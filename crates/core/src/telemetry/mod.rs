//! Telemetry: structured observation of the Reduce pipeline.
//!
//! The framework's whole pitch is *accounting* — it beats the fixed-policy
//! baseline by spending a measured, per-chip retraining budget — so this
//! module makes where epochs and wall-clock go a first-class, typed event
//! stream instead of ad-hoc `Instant::now()` calls in the binaries.
//!
//! # Event taxonomy
//!
//! An [`Observer`] receives [`Event`]s from every framework entry point
//! (threaded through [`crate::exec::ExecConfig`]):
//!
//! * [`Event::StageStarted`] / [`Event::StageFinished`] — one pair per
//!   pipeline [`Stage`] (pretrain, characterize, plan, deploy);
//! * [`Event::EpochCompleted`] — one tick per FAT epoch, scoped to the
//!   grid cell or chip that ran it;
//! * [`Event::PointFinished`] — one per Step-① `(rate, repeat)` grid cell;
//! * [`Event::ChipRetrained`] — one per Step-③ fleet chip;
//! * [`Event::ClusterFormed`] / [`Event::WarmStartHit`] — the eFAT
//!   extension: one per fault-similarity cluster a clustered fleet batch
//!   forms, and one per member chip warm-started from its cluster
//!   representative's converged state;
//! * [`Event::WorkspaceUsed`] — one per fan-out stage, summing the
//!   workspace-arena allocation counters over the stage's jobs;
//! * [`Event::JobFailed`] / [`Event::RetryScheduled`] /
//!   [`Event::DivergenceRecovered`] — the retry history of a contained
//!   job failure (see [`crate::exec::parallel_map_resilient`]);
//! * [`Event::CheckpointWritten`] — the resume journal covers a stage's
//!   full fan-out;
//! * [`Event::ShardTruncated`] / [`Event::RecordDropped`] — self-healing
//!   resume discarded a corrupt journal tail (see
//!   [`crate::journal::Checkpoint::resume_observed`]).
//!
//! # Determinism contract
//!
//! The event *sequence* is identical at any thread count: events carry
//! logical indices (`rate_index`, `repeat`, `chip_id`) and the executor
//! buffers each parallel job's events, flushing them in input order after
//! the fan-out completes (see [`crate::exec::parallel_map_traced`]). The
//! only non-deterministic payload is wall-clock time, which is confined
//! to [`Event::StageFinished::seconds`] and redactable at the sink
//! ([`RunLog`]'s `redact_timing`), making redacted run logs byte-identical
//! across thread counts — CI diffs them.
//!
//! # Sinks
//!
//! | Sink | Cost | Purpose |
//! |------|------|---------|
//! | [`NullObserver`] | zero | the default — no telemetry |
//! | [`RunLog`] | one JSON line per event | deterministic, machine-readable run logs |
//! | [`MetricsRecorder`] | in-memory counters | stage timings + epoch histograms for reports |
//! | [`Fanout`] | delegates | attach several sinks at once |
//!
//! [`RunManifest`] complements the sinks: one `manifest.json` per run
//! recording everything needed to reproduce its artifacts (workbench
//! spec, seeds, grid, policies, crate version).

pub(crate) mod json;
mod manifest;
mod metrics;
mod runlog;

pub use manifest::{FleetManifest, GridManifest, RunManifest, StageWorkspace, ThroughputManifest};
pub use metrics::{MetricsRecorder, MetricsSnapshot, StatSummary, WorkspaceTotals};
pub use runlog::RunLog;
pub(crate) use runlog::{parse_event, render_event};

use std::time::Instant;

/// A pipeline stage, as reported by stage events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Step ⓪: pre-training the fault-free baseline.
    Pretrain,
    /// Step ①: resilience characterisation.
    Characterize,
    /// Step ②: per-chip retraining-amount selection.
    Plan,
    /// Step ③: per-chip fault-aware retraining of a fleet.
    Deploy,
}

impl Stage {
    /// The stage's stable snake_case name (used in run logs and metrics).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Pretrain => "pretrain",
            Stage::Characterize => "characterize",
            Stage::Plan => "plan",
            Stage::Deploy => "deploy",
        }
    }

    /// The inverse of [`Stage::name`] (used when replaying journaled
    /// events).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "pretrain" => Some(Stage::Pretrain),
            "characterize" => Some(Stage::Characterize),
            "plan" => Some(Stage::Plan),
            "deploy" => Some(Stage::Deploy),
            _ => None,
        }
    }
}

/// What ran the epoch an [`Event::EpochCompleted`] tick reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochScope {
    /// A Step-① grid cell.
    Point {
        /// Index of the cell's rate in the sorted characterisation grid.
        rate_index: usize,
        /// Repeat index within the rate.
        repeat: usize,
    },
    /// A Step-③ fleet chip.
    Chip {
        /// Chip identifier.
        chip_id: usize,
    },
}

/// One typed telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A pipeline stage began.
    StageStarted {
        /// Which stage.
        stage: Stage,
    },
    /// A pipeline stage completed successfully.
    StageFinished {
        /// Which stage.
        stage: Stage,
        /// Wall-clock duration — the only non-deterministic event payload;
        /// sinks may redact it (see the module-level determinism contract).
        seconds: Option<f64>,
    },
    /// One FAT epoch completed.
    EpochCompleted {
        /// The grid cell or chip that ran the epoch.
        scope: EpochScope,
        /// 1-based epoch index within the run.
        epoch: usize,
        /// Test accuracy after the epoch.
        accuracy: f32,
    },
    /// One Step-① `(rate, repeat)` grid cell finished.
    PointFinished {
        /// Index of the rate in the sorted grid.
        rate_index: usize,
        /// The injected fault rate.
        rate: f64,
        /// Repeat index within the rate.
        repeat: usize,
        /// Epochs needed to reach the constraint, if reached.
        epochs_to_constraint: Option<usize>,
        /// Accuracy after masking, before retraining.
        pre_retrain_accuracy: f32,
        /// Accuracy after the full measured budget.
        final_accuracy: f32,
    },
    /// One Step-③ fleet chip was retrained and evaluated.
    ChipRetrained {
        /// Chip identifier.
        chip_id: usize,
        /// The chip's fault rate.
        fault_rate: f64,
        /// Epochs the policy budgeted.
        epochs_budgeted: usize,
        /// Epochs actually executed.
        epochs_run: usize,
        /// Deployed (post-FAT) accuracy.
        final_accuracy: f32,
        /// Whether the deployed accuracy meets the constraint.
        satisfied: bool,
    },
    /// A clustered fleet batch grouped fault-similar chips around a
    /// representative (eFAT). Emitted once per cluster, in leader order,
    /// before the batch's per-chip events.
    ClusterFormed {
        /// Chip id of the cluster representative (runs full FAT).
        representative: usize,
        /// Total chips in the cluster, including the representative.
        size: usize,
    },
    /// A member chip warm-started retraining from its cluster
    /// representative's converged state instead of the pretrained
    /// baseline.
    WarmStartHit {
        /// The warm-started member chip.
        chip_id: usize,
        /// The representative whose converged state seeded the member.
        representative: usize,
    },
    /// Workspace-arena allocation counters for one fan-out stage, summed
    /// over the stage's jobs after the fan-out completes.
    ///
    /// Each parallel job owns a private model whose workspace recycles
    /// buffers across epochs; the counters depend only on the job set (so
    /// the event is byte-identical at any thread count) and stop growing
    /// per epoch once training reaches steady state — the observable form
    /// of the zero-allocation property.
    WorkspaceUsed {
        /// The stage whose jobs the counters sum over.
        stage: Stage,
        /// Workspace `take` calls served by recycling a pooled buffer.
        hits: u64,
        /// Workspace `take` calls that had to allocate.
        misses: u64,
        /// Total bytes allocated by misses.
        bytes_allocated: u64,
    },
    /// One attempt of a resilient job failed (returned an error, panicked,
    /// or was failed by an injected [`crate::exec::ChaosPolicy`]). The
    /// failed attempt's own events are discarded; this record replaces
    /// them.
    JobFailed {
        /// The fan-out stage the job belongs to.
        stage: Stage,
        /// The job's stable id (grid-cell / chip index in the full set).
        job: u64,
        /// 0-based attempt number that failed.
        attempt: u32,
        /// The rendered error.
        error: String,
    },
    /// A failed resilient job still has retry budget; the next attempt is
    /// scheduled with a deterministically derived seed salt
    /// ([`crate::exec::retry_seed`]).
    RetryScheduled {
        /// The fan-out stage the job belongs to.
        stage: Stage,
        /// The job's stable id.
        job: u64,
        /// 0-based attempt number being scheduled.
        attempt: u32,
        /// The seed salt the attempt will run with.
        seed: u64,
    },
    /// A job succeeded after one or more divergence failures
    /// ([`crate::ReduceError::Divergence`]): training was rolled back to
    /// the pre-mask snapshot and reseeded until an attempt converged.
    DivergenceRecovered {
        /// The fan-out stage the job belongs to.
        stage: Stage,
        /// The job's stable id.
        job: u64,
        /// How many failed attempts preceded the recovery.
        attempts: u32,
    },
    /// The resume journal was brought up to date for a stage: every
    /// outcome of the stage's fan-out is durably recorded.
    CheckpointWritten {
        /// The journaled stage.
        stage: Stage,
        /// Total outcomes (successes + quarantines) recorded for it.
        completed: usize,
    },
    /// Self-healing resume (or `journal-tool repair`) truncated a journal
    /// shard back to its last valid record, discarding a corrupt tail
    /// (torn final write, detected bitflip, or trailing garbage).
    ShardTruncated {
        /// 0-based shard index (0 for single-file v1 journals).
        shard: usize,
        /// Valid records kept in the shard after truncation.
        kept: usize,
        /// Bytes of corrupt tail discarded.
        dropped_bytes: usize,
    },
    /// One journal record was dropped by a heal or repair truncation.
    /// Emitted per record (after the covering [`Event::ShardTruncated`])
    /// so operators can see exactly which completed work will be redone.
    RecordDropped {
        /// 0-based shard index the record lived in.
        shard: usize,
        /// 0-based record index within the shard.
        record: usize,
    },
}

/// A telemetry sink. Object-safe and `Send + Sync` so one observer can be
/// shared across the executor's worker threads.
///
/// Implementations must not panic and should be cheap: the framework
/// calls [`Observer::on_event`] from its coordinating thread (per-job
/// events are buffered and flushed in deterministic order, never emitted
/// concurrently).
pub trait Observer: Send + Sync {
    /// Receives one event.
    fn on_event(&self, event: &Event);
}

/// The default sink: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&self, _event: &Event) {}
}

/// Broadcasts every event to several sinks, in order.
pub struct Fanout {
    sinks: Vec<std::sync::Arc<dyn Observer>>,
}

impl Fanout {
    /// Creates a fan-out over `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Observer>>) -> Self {
        Fanout { sinks }
    }
}

impl Observer for Fanout {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

impl std::fmt::Debug for Fanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// A monotonic stopwatch — the one place in the workspace allowed to read
/// the wall clock. Everything else consumes durations through
/// [`Event::StageFinished`], keeping results free of ambient time.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        // xtask:allow(wall-clock): telemetry is the sanctioned clock reader; durations only reach results through redactable StageFinished events
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Runs `f` as a timed pipeline stage: emits [`Event::StageStarted`],
/// runs the closure, and on success emits [`Event::StageFinished`] with
/// the measured duration. On error no `StageFinished` is emitted — the
/// run log simply ends at the failure point.
///
/// # Errors
///
/// Propagates `f`'s error unchanged.
pub fn timed_stage<R, E, F>(
    observer: &dyn Observer,
    stage: Stage,
    f: F,
) -> std::result::Result<R, E>
where
    F: FnOnce() -> std::result::Result<R, E>,
{
    observer.on_event(&Event::StageStarted { stage });
    let clock = Stopwatch::start();
    let out = f()?;
    observer.on_event(&Event::StageFinished {
        stage,
        seconds: Some(clock.seconds()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Test sink that records event debug strings.
    #[derive(Default)]
    struct Recorder(Mutex<Vec<String>>);

    impl Observer for Recorder {
        fn on_event(&self, event: &Event) {
            if let Ok(mut log) = self.0.lock() {
                log.push(format!("{event:?}"));
            }
        }
    }

    #[test]
    fn timed_stage_brackets_the_closure() {
        let rec = Recorder::default();
        let out: Result<u32, ()> = timed_stage(&rec, Stage::Plan, || Ok(41 + 1));
        assert_eq!(out, Ok(42));
        let log = rec.0.lock().expect("no poisoning");
        assert_eq!(log.len(), 2);
        assert!(log[0].contains("StageStarted") && log[0].contains("Plan"));
        assert!(log[1].contains("StageFinished") && log[1].contains("Plan"));
    }

    #[test]
    fn timed_stage_propagates_errors_without_finish_event() {
        let rec = Recorder::default();
        let out: Result<(), &str> = timed_stage(&rec, Stage::Deploy, || Err("boom"));
        assert_eq!(out, Err("boom"));
        let log = rec.0.lock().expect("no poisoning");
        assert_eq!(log.len(), 1, "only StageStarted on failure");
    }

    #[test]
    fn fanout_broadcasts_in_order() {
        let a = Arc::new(Recorder::default());
        let b = Arc::new(Recorder::default());
        let fan = Fanout::new(vec![a.clone(), b.clone()]);
        fan.on_event(&Event::StageStarted {
            stage: Stage::Pretrain,
        });
        assert_eq!(a.0.lock().expect("no poisoning").len(), 1);
        assert_eq!(b.0.lock().expect("no poisoning").len(), 1);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let clock = Stopwatch::start();
        assert!(clock.seconds() >= 0.0);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Pretrain.name(), "pretrain");
        assert_eq!(Stage::Characterize.name(), "characterize");
        assert_eq!(Stage::Plan.name(), "plan");
        assert_eq!(Stage::Deploy.name(), "deploy");
        for stage in [
            Stage::Pretrain,
            Stage::Characterize,
            Stage::Plan,
            Stage::Deploy,
        ] {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("warp-core"), None);
    }
}
