//! # reduce-core
//!
//! The **Reduce** framework (Hanif & Shafique, DATE 2023): resilience-driven
//! selection of fault-aware-retraining amounts for fleets of faulty DNN
//! accelerator chips.
//!
//! Fault-aware training (FAT) recovers the accuracy a chip loses to
//! permanent PE faults, but is expensive and must run per chip. Reduce cuts
//! the aggregate cost in three steps:
//!
//! 1. [`ResilienceAnalysis`] (Step ①) — characterise accuracy vs fault rate
//!    vs retraining epochs once, up front (Fig. 2);
//! 2. [`RetrainPolicy::Reduce`] (Step ②) — per chip, interpolate the
//!    [`ResilienceTable`] at the chip's fault rate to pick its epoch budget
//!    ([`Statistic::Max`] is the paper's high-confidence recommendation);
//! 3. [`FatRunner`] / [`FleetEvaluation`] (Step ③) — stream FAT over the
//!    fleet and verify the accuracy constraint (Fig. 3).
//!
//! [`Reduce`] wires the steps together; [`Workbench`] describes the
//! model/task/training setup; the fixed-policy baseline of Zhang et al. is
//! [`RetrainPolicy::Fixed`]. Steps ① and ③ both fan out over the shared
//! deterministic executor ([`exec`]): every entry point takes an
//! [`exec::ExecConfig`] choosing the worker count (0 = auto), and results
//! are byte-identical to a sequential run at any thread count. The
//! [`telemetry`] module observes the whole pipeline — typed events, run
//! logs, metrics, and per-run manifests.
//!
//! # Examples
//!
//! ```
//! use reduce_core::exec::ExecConfig;
//! use reduce_core::{Reduce, ResilienceConfig, RetrainPolicy, Statistic, Workbench};
//! use reduce_systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};
//!
//! # fn main() -> Result<(), reduce_core::ReduceError> {
//! // A fast tabular workbench (tests & doc builds); see Workbench::paper_scale
//! // for the nano-VGG image setup.
//! let exec = ExecConfig::default(); // sequential; ExecConfig::auto() fans out
//! let mut reduce = Reduce::new(Workbench::toy(7), 0.88, 10)?;
//! let grid = ResilienceConfig::builder()
//!     .fault_rates(vec![0.0, 0.15])
//!     .max_epochs(4)
//!     .repeats(1)
//!     .constraint(0.88)
//!     .seed(1)
//!     .build()?;
//! reduce.characterize(grid, &exec)?;
//! let fleet = generate_fleet(&FleetConfig {
//!     chips: 2,
//!     rows: 8,
//!     cols: 8,
//!     rates: RateDistribution::Uniform { lo: 0.0, hi: 0.15 },
//!     model: FaultModel::Random,
//!     seed: 2,
//! })?;
//! let report = reduce.deploy(&fleet, RetrainPolicy::Reduce(Statistic::Max), &exec)?;
//! assert_eq!(report.evaluated, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
// Tests may unwrap/expect freely: a panic there *is* the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
mod error;
pub mod exec;
mod fat;
mod fleet;
mod framework;
pub mod gemm;
mod journal;
mod policy;
pub mod report;
mod resilience;
pub mod telemetry;
mod workbench;

pub use error::{CorruptKind, ReduceError, Result};
pub use exec::ExecConfig;
pub use fat::{FatOutcome, FatRunner, Mitigation, StopRule};
pub use fleet::{
    ChipOutcome, ChipSource, ChipStatus, FleetEvaluation, FleetReport, FleetStrategy,
    QuarantinedChip, SealedChip, SeededChips,
};
pub use framework::Reduce;
pub use journal::{
    inspect_journal, repair_journal, Checkpoint, IoStats, JournalHealth, JournalRecord,
    JournalStatus, RepairSummary, DEFAULT_SHARD_RECORDS,
};
pub use policy::RetrainPolicy;
pub use resilience::{
    FailedPoint, RateSummary, ResilienceAnalysis, ResilienceConfig, ResilienceConfigBuilder,
    ResiliencePoint, ResilienceTable, Selection, Statistic, TableEntry,
};
pub use workbench::{ModelSpec, OptimSpec, Pretrained, TaskSpec, TrainSpec, Workbench};
