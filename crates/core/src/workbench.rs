//! The experiment workbench: model/task/training specifications.
//!
//! A [`Workbench`] bundles everything the Reduce pipeline needs to train and
//! evaluate DNNs reproducibly: a model architecture, a dataset, and training
//! hyper-parameters — all as plain data, so experiment configurations can
//! be logged verbatim alongside results.

use crate::error::{ReduceError, Result};
use reduce_data::{blobs, spirals, Dataset, SynthImageConfig, SynthTask};
use reduce_nn::models::{lenet, mlp, vgg11, VggConfig};
use reduce_nn::{
    evaluate, Adam, CrossEntropyLoss, EvalStats, LrSchedule, Sequential, Sgd, TrainConfig, Trainer,
};
use reduce_tensor::Tensor;

/// Model architecture specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Multilayer perceptron with the given layer widths.
    Mlp {
        /// Layer widths including input and output.
        dims: Vec<usize>,
    },
    /// VGG11 family (the paper's model).
    Vgg(VggConfig),
    /// LeNet-style small CNN.
    Lenet {
        /// Square input resolution.
        input_hw: usize,
        /// Input channels.
        in_channels: usize,
        /// Output classes.
        classes: usize,
    },
}

impl ModelSpec {
    /// Builds a freshly initialised model.
    ///
    /// # Errors
    ///
    /// Propagates architecture validation errors.
    pub fn build(&self, seed: u64) -> Result<Sequential> {
        Ok(match self {
            ModelSpec::Mlp { dims } => mlp(dims, seed)?,
            ModelSpec::Vgg(cfg) => vgg11(cfg, seed)?,
            ModelSpec::Lenet {
                input_hw,
                in_channels,
                classes,
            } => lenet(*input_hw, *in_channels, *classes, seed)?,
        })
    }

    /// The `(out, in)` shapes of the model's GEMM weight matrices — the
    /// tensors a systolic fault map masks.
    ///
    /// # Errors
    ///
    /// Propagates build errors.
    pub fn weight_dims(&self, seed: u64) -> Result<Vec<(usize, usize)>> {
        let model = self.build(seed)?;
        model
            .weight_params()
            .iter()
            .map(|p| {
                let d = p.value().dims();
                match (d.first(), d.get(1)) {
                    (Some(&out), Some(&inp)) => Ok((out, inp)),
                    _ => Err(ReduceError::Internal {
                        invariant: "weight parameters are rank-2 matrices".to_string(),
                    }),
                }
            })
            .collect()
    }

    /// The `(m, in, out)` GEMM shapes one forward pass over a batch of
    /// `batch` inputs executes on the accelerator — the input to the
    /// [`reduce_systolic::CostModel`] cycle accounting. Convolutions count
    /// their im2col GEMM (`m = batch · out_positions`).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for a zero batch or invalid
    /// architecture.
    pub fn gemm_shapes(&self, batch: usize) -> Result<Vec<(usize, usize, usize)>> {
        if batch == 0 {
            return Err(ReduceError::InvalidConfig {
                what: "zero batch".to_string(),
            });
        }
        Ok(match self {
            ModelSpec::Mlp { dims } => {
                if dims.len() < 2 {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("mlp needs >= 2 dims, got {dims:?}"),
                    });
                }
                // xtask:allow(index): windows(2) yields exactly-2-element slices
                dims.windows(2).map(|w| (batch, w[0], w[1])).collect()
            }
            ModelSpec::Vgg(cfg) => {
                // Mirrors the layer plan in `reduce_nn::models::vgg11`.
                let w = cfg.width;
                let plan: [(usize, bool); 8] = [
                    (w, true),
                    (2 * w, true),
                    (4 * w, false),
                    (4 * w, true),
                    (8 * w, false),
                    (8 * w, true),
                    (8 * w, false),
                    (8 * w, true),
                ];
                let mut shapes = Vec::with_capacity(10);
                let mut channels = cfg.in_channels;
                let mut hw = cfg.input_hw;
                for (out_ch, pool) in plan {
                    shapes.push((batch * hw * hw, channels * 9, out_ch));
                    if pool && hw >= 2 {
                        hw /= 2;
                    }
                    channels = out_ch;
                }
                let feat = channels * hw * hw;
                let hidden = 16 * w;
                shapes.push((batch, feat, hidden));
                shapes.push((batch, hidden, cfg.classes));
                shapes
            }
            ModelSpec::Lenet {
                input_hw,
                in_channels,
                classes,
            } => {
                let hw = *input_hw;
                let h2 = hw / 2;
                let h4 = hw / 4;
                vec![
                    (batch * hw * hw, in_channels * 25, 6),
                    (batch * h2 * h2, 6 * 25, 16),
                    (batch, 16 * h4 * h4, 120),
                    (batch, 120, *classes),
                ]
            }
        })
    }
}

/// Dataset specification.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Synthetic CIFAR-like images (the paper-scale task).
    SynthImages {
        /// Generator configuration (prototypes derive from its seed).
        config: SynthImageConfig,
        /// Training-set size.
        train_samples: usize,
        /// Test-set size (drawn i.i.d. from the same task).
        test_samples: usize,
    },
    /// Gaussian blobs (fast tabular task for tests/CI).
    Blobs {
        /// Total samples before the split.
        samples: usize,
        /// Feature dimensionality.
        dim: usize,
        /// Number of classes.
        classes: usize,
        /// Cluster-centre radius.
        separation: f32,
        /// Per-cluster standard deviation.
        std: f32,
        /// Fraction of labels flipped (keeps accuracy off 100 %).
        label_noise: f32,
    },
    /// Interleaved spirals (harder 2-D task).
    Spirals {
        /// Total samples before the split.
        samples: usize,
        /// Number of arms/classes.
        classes: usize,
        /// Revolutions per arm.
        turns: f32,
        /// Coordinate noise.
        noise: f32,
    },
}

impl TaskSpec {
    /// Materialises `(train, test)` datasets from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn materialize(&self, seed: u64) -> Result<(Dataset, Dataset)> {
        match self {
            TaskSpec::SynthImages {
                config,
                train_samples,
                test_samples,
            } => {
                let mut cfg = *config;
                cfg.seed = seed;
                let task = SynthTask::new(cfg)?;
                let train = task.sample(*train_samples, seed.wrapping_add(1))?;
                let test = task.sample(*test_samples, seed.wrapping_add(2))?;
                Ok((train, test))
            }
            TaskSpec::Blobs {
                samples,
                dim,
                classes,
                separation,
                std,
                label_noise,
            } => {
                let data = blobs(*samples, *dim, *classes, *separation, *std, seed)?
                    .with_label_noise(*label_noise, seed.wrapping_add(3))?;
                Ok(data.split(0.8, seed.wrapping_add(4))?)
            }
            TaskSpec::Spirals {
                samples,
                classes,
                turns,
                noise,
            } => {
                let data = spirals(*samples, *classes, *turns, *noise, seed)?;
                Ok(data.split(0.8, seed.wrapping_add(4))?)
            }
        }
    }
}

/// Optimizer specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimSpec {
    /// SGD with momentum and optional weight decay.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
        /// L2 weight decay (0 disables).
        weight_decay: f32,
    },
    /// Adam.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimSpec {
    /// Builds a trainer around this optimizer with the given config.
    fn trainer(&self, config: TrainConfig) -> Trainer {
        match *self {
            OptimSpec::Sgd {
                lr,
                momentum,
                weight_decay,
            } => Trainer::new(
                Sgd::with_momentum(lr, momentum).weight_decay(weight_decay),
                CrossEntropyLoss,
                config,
            ),
            OptimSpec::Adam { lr } => Trainer::new(Adam::new(lr), CrossEntropyLoss, config),
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Optimizer specification.
    pub optimizer: OptimSpec,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            optimizer: OptimSpec::Sgd {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            batch_size: 32,
            schedule: LrSchedule::Constant,
        }
    }
}

/// A complete experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Workbench {
    /// Model architecture.
    pub model: ModelSpec,
    /// Dataset.
    pub task: TaskSpec,
    /// Training hyper-parameters for pre-training (and FAT, unless
    /// [`Workbench::fat_train`] overrides them).
    pub train: TrainSpec,
    /// Optional FAT-specific hyper-parameters. Fault-aware retraining is a
    /// fine-tuning problem: a lower learning rate than pre-training makes
    /// recovery epochs scale with damage instead of re-learning the task
    /// from scratch each epoch. `None` reuses [`Workbench::train`].
    pub fat_train: Option<TrainSpec>,
    /// Batch-norm recalibration passes performed after masking and before
    /// any FAT epoch (0 disables). Masking shifts layer statistics, so a
    /// batch-normalised network evaluated with stale running statistics
    /// collapses far below its true post-pruning accuracy; streaming the
    /// training set through the masked model in train mode (no weight
    /// updates) repairs the statistics. Irrelevant for BN-free models.
    pub bn_recalibration_passes: usize,
    /// Systolic-array geometry `(rows, cols)` of the target chips. The
    /// paper uses 256×256; CPU-scale experiments default to a smaller
    /// array so the scaled-down layers tile across it the same way large
    /// layers tile across 256×256.
    pub array: (usize, usize),
    /// Master seed: model init, data generation and shuffling derive from
    /// it.
    pub seed: u64,
}

impl Workbench {
    /// The fast tabular workbench used by tests: an MLP on Gaussian blobs
    /// with label noise, which trains in milliseconds and saturates in the
    /// mid-90s like the paper-scale task.
    pub fn toy(seed: u64) -> Self {
        Workbench {
            model: ModelSpec::Mlp {
                dims: vec![8, 48, 32, 4],
            },
            task: TaskSpec::Blobs {
                samples: 1200,
                dim: 8,
                classes: 4,
                separation: 3.6,
                std: 1.0,
                label_noise: 0.02,
            },
            train: TrainSpec::default(),
            fat_train: None,
            bn_recalibration_passes: 0,
            array: (8, 8),
            seed,
        }
    }

    /// The paper-scale workbench: nano-VGG11 on the synthetic CIFAR-like
    /// task (see DESIGN.md for the scale substitution rationale).
    ///
    /// Calibration notes: batch norm is disabled so that FAP-only accuracy
    /// degrades *gradually* with fault rate as in the paper's Fig. 2a
    /// (stale batch statistics otherwise collapse any masked network to
    /// chance); FAT runs at a fine-tuning learning rate so that
    /// epochs-to-constraint grows with fault rate (Fig. 2b) instead of
    /// every chip recovering in one aggressive epoch.
    pub fn paper_scale(train_samples: usize, test_samples: usize, seed: u64) -> Self {
        let mut vgg = VggConfig::nano(10);
        vgg.batch_norm = false;
        let mut images = SynthImageConfig::cifar_like(train_samples, seed);
        images.pixel_noise = 0.45;
        Workbench {
            model: ModelSpec::Vgg(vgg),
            task: TaskSpec::SynthImages {
                config: images,
                train_samples,
                test_samples,
            },
            train: TrainSpec {
                optimizer: OptimSpec::Sgd {
                    lr: 0.02,
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                batch_size: 32,
                schedule: LrSchedule::Constant,
            },
            fat_train: Some(TrainSpec {
                optimizer: OptimSpec::Sgd {
                    lr: 0.0015,
                    momentum: 0.9,
                    weight_decay: 0.0,
                },
                batch_size: 32,
                schedule: LrSchedule::Constant,
            }),
            bn_recalibration_passes: 0,
            array: (32, 32),
            seed,
        }
    }

    /// Builds a pre-training trainer (fresh optimizer state).
    pub fn trainer(&self, shuffle_seed: u64) -> Trainer {
        self.train.optimizer.trainer(TrainConfig {
            batch_size: self.train.batch_size,
            shuffle_seed,
            schedule: self.train.schedule,
        })
    }

    /// Builds a fault-aware-retraining trainer: uses
    /// [`Workbench::fat_train`] if set, else the pre-training spec.
    pub fn fat_trainer(&self, shuffle_seed: u64) -> Trainer {
        let spec = self.fat_train.as_ref().unwrap_or(&self.train);
        spec.optimizer.trainer(TrainConfig {
            batch_size: spec.batch_size,
            shuffle_seed,
            schedule: spec.schedule,
        })
    }

    /// The target chips' array geometry `(rows, cols)`.
    pub fn array_dims(&self) -> (usize, usize) {
        self.array
    }

    /// Materialises the datasets.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn datasets(&self) -> Result<(Dataset, Dataset)> {
        self.task.materialize(self.seed)
    }

    /// Evaluates a model on a dataset with this workbench's loss.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate(&self, model: &mut Sequential, data: &Dataset) -> Result<EvalStats> {
        Ok(evaluate(
            model,
            &CrossEntropyLoss,
            data.features(),
            data.labels(),
            self.train.batch_size,
        )?)
    }
}

/// A pre-trained (fault-free) model: the input to fault-aware retraining.
#[derive(Debug, Clone)]
pub struct Pretrained {
    /// Snapshot of the trained fault-free weights.
    pub state: Vec<(String, Tensor)>,
    /// Fault-free test accuracy (the accuracy ceiling retraining aims for).
    pub baseline_accuracy: f32,
    /// Epochs of pre-training performed.
    pub epochs: usize,
}

impl Workbench {
    /// Pre-trains the fault-free model for `epochs` epochs (Step 0 of the
    /// pipeline — the paper receives this DNN as input).
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn pretrain(&self, epochs: usize) -> Result<Pretrained> {
        if epochs == 0 {
            return Err(ReduceError::InvalidConfig {
                what: "pretraining needs at least one epoch".to_string(),
            });
        }
        let (train, test) = self.datasets()?;
        let mut model = self.model.build(self.seed)?;
        let mut trainer = self.trainer(self.seed ^ 0xA5A5);
        trainer.fit(&mut model, train.features(), train.labels(), epochs)?;
        let stats = self.evaluate(&mut model, &test)?;
        Ok(Pretrained {
            state: model.state_dict(),
            baseline_accuracy: stats.accuracy,
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_workbench_pretrains_to_high_accuracy() {
        let wb = Workbench::toy(1);
        let pre = wb.pretrain(12).expect("valid workbench");
        assert!(
            pre.baseline_accuracy > 0.9,
            "baseline accuracy only {}",
            pre.baseline_accuracy
        );
        assert!(!pre.state.is_empty());
        assert_eq!(pre.epochs, 12);
    }

    #[test]
    fn pretrain_is_deterministic() {
        let wb = Workbench::toy(2);
        let a = wb.pretrain(3).expect("valid workbench");
        let b = wb.pretrain(3).expect("valid workbench");
        assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
        for ((_, t1), (_, t2)) in a.state.iter().zip(&b.state) {
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn zero_epoch_pretrain_rejected() {
        assert!(Workbench::toy(0).pretrain(0).is_err());
    }

    #[test]
    fn weight_dims_match_built_model() {
        let wb = Workbench::toy(3);
        let dims = wb.model.weight_dims(wb.seed).expect("builds");
        assert_eq!(dims, vec![(48, 8), (32, 48), (4, 32)]);
    }

    #[test]
    fn model_specs_build() {
        assert!(ModelSpec::Mlp { dims: vec![4, 2] }.build(0).is_ok());
        assert!(ModelSpec::Lenet {
            input_hw: 16,
            in_channels: 1,
            classes: 4
        }
        .build(0)
        .is_ok());
        assert!(ModelSpec::Vgg(VggConfig::nano(10)).build(0).is_ok());
        assert!(ModelSpec::Mlp { dims: vec![4] }.build(0).is_err());
    }

    #[test]
    fn task_specs_materialize() {
        let (tr, te) = TaskSpec::Blobs {
            samples: 100,
            dim: 4,
            classes: 2,
            separation: 3.0,
            std: 0.5,
            label_noise: 0.0,
        }
        .materialize(0)
        .expect("valid");
        assert_eq!(tr.len() + te.len(), 100);

        let (tr, te) = TaskSpec::Spirals {
            samples: 50,
            classes: 2,
            turns: 1.0,
            noise: 0.05,
        }
        .materialize(0)
        .expect("valid");
        assert_eq!(tr.len() + te.len(), 50);

        let (tr, te) = TaskSpec::SynthImages {
            config: SynthImageConfig::cifar_like(10, 0),
            train_samples: 20,
            test_samples: 10,
        }
        .materialize(5)
        .expect("valid");
        assert_eq!(tr.len(), 20);
        assert_eq!(te.len(), 10);
    }

    #[test]
    fn adam_spec_builds_trainer() {
        let wb = Workbench {
            train: TrainSpec {
                optimizer: OptimSpec::Adam { lr: 0.01 },
                ..TrainSpec::default()
            },
            ..Workbench::toy(4)
        };
        let pre = wb.pretrain(2).expect("valid workbench");
        assert!(pre.baseline_accuracy > 0.3);
    }
}
