//! Property tests for the journal crash-consistency contract.
//!
//! A journal directory that suffers arbitrary single-point damage — a bit
//! flip at a random byte, a truncation at a random offset, or a deleted
//! file — must resume to a valid prefix of the pre-damage record sequence
//! or fail with a typed error that `repair_journal` can act on. It must
//! never panic and never return records that were not appended.
//!
//! Version 3 (framed) journals carry per-record CRCs, so the contract is
//! strict: resume either yields an exact prefix or reports
//! `JournalCorrupt`, and repair always restores a resumable prefix.
//! Version 2 journals predate the frames; a bit flip there can be
//! undetectable (it may simply mutate a field in place), which is exactly
//! the gap the v3 format closes. For v2 the properties therefore assert
//! typed-error-or-clean-parse, not byte-accuracy.
//!
//! Journals are built through the public API under 1, 2, or 8 concurrent
//! appender threads, so the properties also double as a thread-safety
//! check on `Checkpoint`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use reduce_core::telemetry::NullObserver;
use reduce_core::{repair_journal, Checkpoint, JournalRecord, ReduceError};

/// A unique scratch directory per test case (no temp-dir crate in tree).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reduce-journal-prop-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small, cheaply comparable record keyed by `job`.
fn record(job: u64) -> JournalRecord {
    JournalRecord::PointFailed {
        job,
        rate_index: job as usize,
        rate: 0.25,
        repeat: 0,
        attempts: 1,
        error: format!("boom {job}"),
        events: Vec::new(),
    }
}

/// Appends `count` records through `threads` concurrent appenders.
fn build_journal(manifest: &Path, shard_records: usize, count: u64, threads: u64) {
    let journal = Arc::new(Checkpoint::create(manifest).with_shard_records(shard_records));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let journal = Arc::clone(&journal);
            scope.spawn(move || {
                let mut job = t;
                while job < count {
                    journal.append(record(job)).expect("append");
                    job += threads;
                }
            });
        }
    });
}

/// Rewrites a v3 journal directory as the v2 (unframed) layout the v3
/// format replaced: bare JSON manifest header, shard lines without CRC
/// frames, no footers. Mirrors what a journal written before the framed
/// format looks like on disk.
fn downgrade_to_v2(manifest: &Path, shard_records: usize) {
    fs::write(
        manifest,
        format!(
            "{{\"journal\":\"reduce-journal\",\"version\":2,\"shard_records\":{shard_records}}}\n"
        ),
    )
    .expect("write v2 manifest");
    for shard in shard_files(manifest) {
        let framed = fs::read_to_string(&shard).expect("read shard");
        let mut unframed = String::new();
        for line in framed.lines() {
            // v3 frame: `CCCCCCCC LEN JSON` — strip the two framing fields.
            let payload = line
                .split_once(' ')
                .and_then(|(_, rest)| rest.split_once(' '))
                .map(|(_, payload)| payload)
                .unwrap_or(line);
            if payload.contains("\"footer\":\"reduce-shard\"") {
                continue;
            }
            unframed.push_str(payload);
            unframed.push('\n');
        }
        fs::write(&shard, unframed).expect("write v2 shard");
    }
}

/// The consecutive shard files of `manifest`'s journal, in index order.
fn shard_files(manifest: &Path) -> Vec<PathBuf> {
    let stem = manifest
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("manifest stem");
    let dir = manifest.parent().expect("manifest parent");
    let mut shards = Vec::new();
    for index in 0.. {
        let shard = dir.join(format!("{stem}-{index:05}.jsonl"));
        if !shard.exists() {
            break;
        }
        shards.push(shard);
    }
    shards
}

/// Every file the journal currently consists of (manifest first).
fn journal_files(manifest: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if manifest.exists() {
        files.push(manifest.to_path_buf());
    }
    files.extend(shard_files(manifest));
    files
}

#[derive(Debug, Clone, Copy)]
enum Damage {
    FlipBit,
    Truncate,
    Delete,
}

/// Applies one damage action to one journal file, both chosen by the
/// (arbitrary) selectors modulo what actually exists on disk. Returns
/// `false` when there was nothing to damage.
fn apply_damage(manifest: &Path, damage: Damage, file_sel: u64, pos_sel: u64, bit: u32) -> bool {
    let files = journal_files(manifest);
    let Some(target) = files.get((file_sel % files.len().max(1) as u64) as usize) else {
        return false;
    };
    match damage {
        Damage::Delete => {
            fs::remove_file(target).expect("delete journal file");
            true
        }
        Damage::Truncate => {
            let bytes = fs::read(target).expect("read target");
            if bytes.is_empty() {
                return false;
            }
            let keep = (pos_sel % bytes.len() as u64) as usize;
            fs::write(target, &bytes[..keep]).expect("truncate target");
            true
        }
        Damage::FlipBit => {
            let mut bytes = fs::read(target).expect("read target");
            if bytes.is_empty() {
                return false;
            }
            let pos = (pos_sel % bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << (bit % 8);
            fs::write(target, &bytes).expect("write flipped target");
            true
        }
    }
}

/// Asserts `resumed` is an exact prefix of `original`.
fn assert_prefix(resumed: &[JournalRecord], original: &[JournalRecord], context: &str) {
    assert!(
        resumed.len() <= original.len() && resumed == &original[..resumed.len()],
        "{context}: resumed {} record(s) that are not a prefix of the {} original(s)",
        resumed.len(),
        original.len(),
    );
}

/// The contract a damaged journal must satisfy on resume. `strict` is
/// true for v3 (framed) journals, where resume must yield an exact
/// prefix or a typed `JournalCorrupt` that repair can always clear.
fn check_damage_contract(manifest: &Path, original: &[JournalRecord], strict: bool, context: &str) {
    match Checkpoint::resume(manifest) {
        Ok(journal) => {
            let resumed = journal.records().expect("records after resume");
            if strict {
                assert_prefix(&resumed, original, context);
            }
        }
        Err(ReduceError::JournalCorrupt { .. }) => {
            // Typed corruption: repair must truncate to a resumable store.
            repair_journal(manifest, &NullObserver)
                .unwrap_or_else(|e| panic!("{context}: repair after typed corruption failed: {e}"));
            let journal = Checkpoint::resume(manifest)
                .unwrap_or_else(|e| panic!("{context}: resume after repair failed: {e}"));
            let resumed = journal.records().expect("records after repair");
            if strict {
                assert_prefix(&resumed, original, context);
            }
        }
        Err(ReduceError::InvalidConfig { what }) => {
            // Only a mangled legacy (v1/v2) header is allowed to be
            // unrecognisable; v3 damage is always typed as corruption.
            assert!(
                !strict,
                "{context}: v3 resume failed untyped with InvalidConfig: {what}"
            );
            // Repair has no header to rebuild from, but must not panic.
            let _ = repair_journal(manifest, &NullObserver);
        }
        Err(other) => panic!("{context}: resume failed with an unexpected error: {other:?}"),
    }
}

fn journal_version() -> impl Strategy<Value = u8> {
    prop_oneof![2 => Just(3u8), 1 => Just(2u8)]
}

fn appender_threads() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(2u64), Just(8u64)]
}

fn damage_kind() -> impl Strategy<Value = Damage> {
    prop_oneof![
        3 => Just(Damage::FlipBit),
        2 => Just(Damage::Truncate),
        1 => Just(Damage::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-point damage anywhere in a journal directory resumes to a
    /// valid prefix or a typed, repairable error — and never panics.
    #[test]
    fn damaged_journals_resume_or_fail_typed(
        version in journal_version(),
        shard_records in 1usize..=4,
        count in 0u64..=12,
        threads in appender_threads(),
        damage in damage_kind(),
        file_sel in 0u64..=u64::MAX,
        pos_sel in 0u64..=u64::MAX,
        bit in 0u32..8,
    ) {
        let dir = scratch_dir("damage");
        let manifest = dir.join("journal.jsonl");
        build_journal(&manifest, shard_records, count, threads);
        if version == 2 {
            downgrade_to_v2(&manifest, shard_records);
        }

        // The canonical pre-damage sequence, read back through resume —
        // which also proves the downgraded v2 layout still resumes.
        let pristine = Checkpoint::resume(&manifest).expect("pristine resume");
        let original = pristine.records().expect("pristine records");
        prop_assert_eq!(original.len() as u64, count);
        drop(pristine);

        let context = format!(
            "v{version} shard_records={shard_records} count={count} threads={threads} {damage:?}"
        );
        if apply_damage(&manifest, damage, file_sel, pos_sel, bit) {
            check_damage_contract(&manifest, &original, version == 3, &context);
        } else {
            // Nothing on disk to damage (e.g. an empty journal): resume
            // must still come back clean.
            let journal = Checkpoint::resume(&manifest).expect("clean resume");
            prop_assert_eq!(journal.records().expect("records"), original);
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// A resumed-after-damage v3 journal must accept new appends and end
    /// with exactly prefix + re-appended tail: the self-healed store is a
    /// fully functional journal, not a read-only salvage.
    #[test]
    fn healed_v3_journals_accept_further_appends(
        shard_records in 1usize..=4,
        count in 1u64..=10,
        damage in damage_kind(),
        file_sel in 0u64..=u64::MAX,
        pos_sel in 0u64..=u64::MAX,
        bit in 0u32..8,
    ) {
        let dir = scratch_dir("reappend");
        let manifest = dir.join("journal.jsonl");
        build_journal(&manifest, shard_records, count, 1);
        let original = Checkpoint::resume(&manifest)
            .expect("pristine resume")
            .records()
            .expect("pristine records");

        if apply_damage(&manifest, damage, file_sel, pos_sel, bit) {
            let journal = match Checkpoint::resume(&manifest) {
                Ok(journal) => journal,
                Err(ReduceError::JournalCorrupt { .. }) => {
                    repair_journal(&manifest, &NullObserver).expect("repair");
                    Checkpoint::resume(&manifest).expect("resume after repair")
                }
                Err(other) => panic!("unexpected resume error: {other:?}"),
            };
            let kept = journal.records().expect("records").len() as u64;
            for job in kept..count {
                journal.append(record(job)).expect("re-append");
            }
            drop(journal);
            let rebuilt = Checkpoint::resume(&manifest)
                .expect("resume after re-append")
                .records()
                .expect("rebuilt records");
            prop_assert_eq!(rebuilt, original);
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// Exhaustive complement to the sampled properties: truncating any journal
/// file at *every* byte offset must resume to an exact prefix, possibly
/// after an explicit repair. Covers every torn-write length a crash can
/// leave behind in a v3 directory.
#[test]
fn every_truncation_point_of_a_v3_journal_is_recoverable() {
    let dir = scratch_dir("truncate-sweep");
    let manifest = dir.join("journal.jsonl");
    build_journal(&manifest, 2, 6, 1);
    let original = Checkpoint::resume(&manifest)
        .expect("pristine resume")
        .records()
        .expect("pristine records");
    let pristine: Vec<(PathBuf, Vec<u8>)> = journal_files(&manifest)
        .into_iter()
        .map(|f| {
            let bytes = fs::read(&f).expect("read pristine");
            (f, bytes)
        })
        .collect();

    for (target, bytes) in &pristine {
        for keep in 0..bytes.len() {
            for (file, contents) in &pristine {
                fs::write(file, contents).expect("restore pristine");
            }
            fs::write(target, &bytes[..keep]).expect("truncate");
            let context = format!("{} truncated to {keep} B", target.display());
            check_damage_contract(&manifest, &original, true, &context);
        }
    }
    fs::remove_dir_all(&dir).ok();
}
