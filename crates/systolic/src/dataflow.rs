//! Cycle-stepped simulation of the weight-stationary systolic dataflow.
//!
//! [`SystolicArray::gemm`](crate::SystolicArray::gemm) is a *functional*
//! model (it computes what the hardware computes, with no notion of time).
//! [`DataflowSim`] is the microarchitectural reference underneath it: a
//! register-accurate simulation of the classic weight-stationary pipeline —
//!
//! * weights are preloaded, one per PE;
//! * activations enter the west edge, one row per array row, skewed by one
//!   cycle per row so that the diagonal wavefront lines up;
//! * partial sums flow south; PE `(r, c)` computes
//!   `psum_out = psum_in + w[r][c] · a` unless it is faulty, in which case
//!   the FAP bypass forwards `psum_in` unchanged (and the activation still
//!   propagates east);
//! * column `c` emits the result for input vector `m` at cycle
//!   `m + R + c` (0-indexed, counting from the first injection cycle), so
//!   a batch of `M` vectors drains in `M + R + C − 1` cycles.
//!
//! The crate's tests assert bit-level agreement between this simulation,
//! the functional bypass model, and the mask + dense-GEMM fast path, and
//! that the measured cycle count matches [`CostModel`](crate::CostModel)'s
//! closed-form pipeline term.

use crate::error::{Result, SystolicError};
use crate::fault::FaultMap;
use reduce_tensor::Tensor;

/// The output of a dataflow simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowOutput {
    /// Result matrix, shape `(m, cols)`: one output vector per input.
    pub outputs: Tensor,
    /// Cycles from the first activation injection until the last partial
    /// sum left the array.
    pub cycles: u64,
}

/// A register-accurate weight-stationary systolic-array tile simulator.
#[derive(Debug, Clone)]
pub struct DataflowSim {
    rows: usize,
    cols: usize,
    /// Stationary weights, `weights[r][c]` held by PE `(r, c)`.
    weights: Vec<f32>,
    /// Bypass flags (true = faulty, MAC skipped).
    bypass: Vec<bool>,
}

impl DataflowSim {
    /// Preloads a tile of weights onto a (possibly faulty) array.
    ///
    /// `tile` must be exactly `(rows, cols)` — tiling of larger weight
    /// matrices is the caller's job (see
    /// [`simulate_tiled_gemm`]).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] if the tile does not match
    /// the fault map's geometry.
    pub fn new(tile: &Tensor, fault_map: &FaultMap) -> Result<Self> {
        let (r, c) = tile.shape().as_matrix()?;
        if r != fault_map.rows() || c != fault_map.cols() {
            return Err(SystolicError::BadGeometry {
                reason: format!(
                    "tile {r}x{c} does not match array {}x{}",
                    fault_map.rows(),
                    fault_map.cols()
                ),
            });
        }
        let bypass = (0..r * c)
            .map(|i| fault_map.is_faulty(i / c, i % c))
            .collect();
        Ok(DataflowSim {
            rows: r,
            cols: c,
            weights: tile.data().to_vec(),
            bypass,
        })
    }

    /// Array rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Streams `inputs` (shape `(m, rows)`, one reduction vector per row)
    /// through the pipeline and collects `(m, cols)` outputs.
    ///
    /// Note the orientation: the simulated array computes
    /// `out[m][c] = Σ_r inputs[m][r] · weights[r][c]` — the caller maps a
    /// layer's `(out, in)` weight matrix onto tiles transposed, exactly as
    /// [`crate::fap_mask`] documents.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] if `inputs` has the wrong
    /// width.
    pub fn run(&self, inputs: &Tensor) -> Result<DataflowOutput> {
        let (m, width) = inputs.shape().as_matrix()?;
        if width != self.rows {
            return Err(SystolicError::BadGeometry {
                reason: format!("input width {width} != array rows {}", self.rows),
            });
        }
        let (rows, cols) = (self.rows, self.cols);
        let mut outputs = Tensor::zeros([m, cols]);
        if m == 0 {
            return Ok(DataflowOutput { outputs, cycles: 0 });
        }
        // Pipeline registers between cycles.
        let mut act = vec![0.0f32; rows * cols]; // activation moving east
        let mut psum = vec![0.0f32; rows * cols]; // partial sum moving south
        let mut act_next = act.clone();
        let mut psum_next = psum.clone();
        // Which input vector an in-flight value belongs to. -1 = bubble.
        let mut tag = vec![-1i64; rows * cols];
        let mut tag_next = tag.clone();

        let total_cycles = m + rows + cols - 1;
        let mut produced = 0usize;
        for cycle in 0..total_cycles {
            for r in 0..rows {
                for c in 0..cols {
                    let idx = r * cols + c;
                    // Activation arriving from the west this cycle.
                    let (a, a_tag) = if c == 0 {
                        // Skewed injection: row r of input vector k enters
                        // at cycle k + r.
                        if cycle >= r && cycle - r < m {
                            let k = cycle - r;
                            (inputs.data()[k * rows + r], k as i64)
                        } else {
                            (0.0, -1)
                        }
                    } else {
                        (act[idx - 1], tag[idx - 1])
                    };
                    // Partial sum arriving from the north this cycle.
                    let p_in = if r == 0 {
                        0.0
                    } else {
                        psum[(r - 1) * cols + c]
                    };
                    let p_out = if self.bypass[idx] {
                        p_in // FAP: faulty MAC is bypassed
                    } else {
                        p_in + self.weights[idx] * a
                    };
                    act_next[idx] = a;
                    tag_next[idx] = a_tag;
                    psum_next[idx] = p_out;
                    // Bottom row: the column's dot product for input k
                    // exits after the wavefront for k passed the whole
                    // column, i.e. when this PE processed row element
                    // (rows-1) of vector k.
                    if r == rows - 1 && a_tag >= 0 {
                        outputs.data_mut()[(a_tag as usize) * cols + c] = p_out;
                        produced += 1;
                    }
                }
            }
            std::mem::swap(&mut act, &mut act_next);
            std::mem::swap(&mut psum, &mut psum_next);
            std::mem::swap(&mut tag, &mut tag_next);
        }
        debug_assert_eq!(produced, m * cols, "pipeline failed to drain");
        Ok(DataflowOutput {
            outputs,
            cycles: total_cycles as u64,
        })
    }
}

/// Executes a full `(out, in)` GEMM on the faulty array by tiling it over
/// the cycle-stepped simulator, returning the outputs and the total
/// pipeline cycles (excluding weight loads, matching
/// [`CostModel::weight_load_cycles`](crate::CostModel) = 0).
///
/// This is the slowest, most faithful execution path — used by tests to
/// validate the functional model and the cost model simultaneously.
///
/// # Errors
///
/// Returns geometry errors for inconsistent shapes.
pub fn simulate_tiled_gemm(
    weight: &Tensor,
    x: &Tensor,
    fault_map: &FaultMap,
) -> Result<DataflowOutput> {
    let (out_dim, in_dim) = weight.shape().as_matrix()?;
    let (m, in_x) = x.shape().as_matrix()?;
    if in_dim != in_x {
        return Err(SystolicError::Tensor(
            reduce_tensor::TensorError::ShapeMismatch {
                op: "simulate_tiled_gemm",
                lhs: weight.dims().to_vec(),
                rhs: x.dims().to_vec(),
            },
        ));
    }
    let (rows, cols) = (fault_map.rows(), fault_map.cols());
    let tiles_i = in_dim.div_ceil(rows);
    let tiles_j = out_dim.div_ceil(cols);
    let mut outputs = Tensor::zeros([m, out_dim]);
    let mut cycles = 0u64;
    for ti in 0..tiles_i {
        // Input slice for this reduction tile, zero-padded to the array
        // width: inputs (m, rows).
        let mut tile_x = Tensor::zeros([m, rows]);
        for mm in 0..m {
            for r in 0..rows {
                let i = ti * rows + r;
                if i < in_dim {
                    tile_x.data_mut()[mm * rows + r] = x.data()[mm * in_dim + i];
                }
            }
        }
        for tj in 0..tiles_j {
            // Weight tile transposed onto the array: PE (r, c) holds
            // W[tj*cols + c][ti*rows + r].
            let mut tile_w = Tensor::zeros([rows, cols]);
            for r in 0..rows {
                for c in 0..cols {
                    let j = tj * cols + c;
                    let i = ti * rows + r;
                    if j < out_dim && i < in_dim {
                        tile_w.data_mut()[r * cols + c] = weight.data()[j * in_dim + i];
                    }
                }
            }
            let sim = DataflowSim::new(&tile_w, fault_map)?;
            let result = sim.run(&tile_x)?;
            cycles += result.cycles;
            for mm in 0..m {
                for c in 0..cols {
                    let j = tj * cols + c;
                    if j < out_dim {
                        outputs.data_mut()[mm * out_dim + j] +=
                            result.outputs.data()[mm * cols + c];
                    }
                }
            }
        }
    }
    Ok(DataflowOutput { outputs, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SystolicArray;
    use crate::fault::FaultModel;
    use crate::perf::CostModel;
    use reduce_tensor::ops;

    #[test]
    fn single_tile_matches_dense_gemm() {
        let map = FaultMap::fault_free(4, 3).expect("nonzero");
        // W stored (out=3, in=4); tile holds Wᵀ.
        let w = Tensor::rand_uniform([3, 4], -1.0, 1.0, 1);
        let x = Tensor::rand_uniform([5, 4], -1.0, 1.0, 2);
        let out = simulate_tiled_gemm(&w, &x, &map).expect("conformable");
        let dense = ops::matmul_nt(&x, &w).expect("conformable");
        assert!(out.outputs.approx_eq(&dense, 1e-4), "dataflow != dense");
    }

    #[test]
    fn cycle_count_matches_pipeline_formula() {
        let map = FaultMap::fault_free(6, 5).expect("nonzero");
        let w = Tensor::rand_uniform([5, 6], -1.0, 1.0, 3);
        let x = Tensor::rand_uniform([7, 6], -1.0, 1.0, 4);
        let out = simulate_tiled_gemm(&w, &x, &map).expect("conformable");
        // One tile: M + R + C - 1 cycles (register-accurate count; the
        // CostModel uses M + R + C - 2, the classic fill+drain formula
        // without the final write-out cycle).
        assert_eq!(out.cycles, 7 + 6 + 5 - 1);
        let mut cm = CostModel::small(6, 5);
        cm.weight_load_cycles = 0;
        assert_eq!(cm.gemm_cycles(7, 6, 5).expect("valid") + 1, out.cycles);
    }

    #[test]
    fn tiled_cycles_scale_with_tile_count() {
        let map = FaultMap::fault_free(4, 4).expect("nonzero");
        let w = Tensor::rand_uniform([8, 8], -1.0, 1.0, 5);
        let x = Tensor::rand_uniform([3, 8], -1.0, 1.0, 6);
        let out = simulate_tiled_gemm(&w, &x, &map).expect("conformable");
        // 2x2 tiles, each 3 + 4 + 4 - 1 = 10 cycles.
        assert_eq!(out.cycles, 4 * 10);
        let dense = ops::matmul_nt(&x, &w).expect("conformable");
        assert!(out.outputs.approx_eq(&dense, 1e-4));
    }

    #[test]
    fn faulty_dataflow_matches_functional_bypass_model() {
        for seed in 0..5 {
            let map = FaultMap::generate(4, 5, 0.3, FaultModel::Random, seed).expect("valid rate");
            let w = Tensor::rand_uniform([7, 9], -1.0, 1.0, seed + 10);
            let x = Tensor::rand_uniform([4, 9], -1.0, 1.0, seed + 20);
            let sim = simulate_tiled_gemm(&w, &x, &map).expect("conformable");
            let functional = SystolicArray::new(map).gemm(&w, &x).expect("conformable");
            assert!(
                sim.outputs.approx_eq(&functional, 1e-4),
                "seed {seed}: cycle-stepped and functional models disagree"
            );
        }
    }

    #[test]
    fn fully_faulty_array_emits_zeros() {
        let map = FaultMap::generate(3, 3, 1.0, FaultModel::Random, 0).expect("valid rate");
        let w = Tensor::ones([3, 3]);
        let x = Tensor::ones([2, 3]);
        let out = simulate_tiled_gemm(&w, &x, &map).expect("conformable");
        assert_eq!(out.outputs.sum(), 0.0);
    }

    #[test]
    fn geometry_validation() {
        let map = FaultMap::fault_free(4, 4).expect("nonzero");
        // Tile mismatch.
        assert!(DataflowSim::new(&Tensor::zeros([3, 4]), &map).is_err());
        // Input width mismatch.
        let sim = DataflowSim::new(&Tensor::zeros([4, 4]), &map).expect("geometry matches");
        assert!(sim.run(&Tensor::zeros([2, 5])).is_err());
        // GEMM shape mismatch.
        assert!(simulate_tiled_gemm(&Tensor::zeros([4, 3]), &Tensor::zeros([2, 5]), &map).is_err());
    }

    #[test]
    fn empty_batch_is_zero_cycles() {
        let map = FaultMap::fault_free(2, 2).expect("nonzero");
        let sim = DataflowSim::new(&Tensor::zeros([2, 2]), &map).expect("geometry matches");
        let out = sim.run(&Tensor::zeros([0, 2])).expect("valid width");
        assert_eq!(out.cycles, 0);
        assert_eq!(out.outputs.dims(), &[0, 2]);
    }
}
