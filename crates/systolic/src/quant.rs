//! Int8 weight quantization — the numeric format of the modelled
//! accelerator class.
//!
//! TPU-generation systolic arrays execute int8 GEMMs with int32
//! accumulators. This module provides symmetric per-tensor quantization,
//! an integer GEMM reference, and the fault interaction that motivates it:
//! a permanent fault in a weight register corrupts the *int8 code*, so the
//! worst-case float error of an unprotected fault is `±127·scale` — which
//! is why FAP's bypass-to-zero (a perfectly representable code) is the
//! sane mitigation.

use crate::error::{Result, SystolicError};
use crate::fault::FaultMap;
use reduce_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Symmetric per-tensor quantization parameters: `code = round(x / scale)`
/// clamped to `[-127, 127]` (the −128 code is unused, keeping the scheme
/// symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Float value of one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Fits the scale to cover the data's maximum magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] for empty or non-finite
    /// data.
    pub fn fit(data: &[f32]) -> Result<Self> {
        if data.is_empty() {
            return Err(SystolicError::InvalidConfig {
                what: "cannot fit quantization to empty data".to_string(),
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(SystolicError::InvalidConfig {
                what: "non-finite values in quantization input".to_string(),
            });
        }
        let max_abs = data.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        // All-zero tensors get a unit scale (any scale represents them).
        // xtask:allow(float-eq): exact zero max |w| means an all-zero tensor
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        Ok(QuantParams { scale })
    }

    /// Quantizes one value to its int8 code.
    pub fn quantize(&self, x: f32) -> i8 {
        (x / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one code back to float.
    pub fn dequantize(&self, code: i8) -> f32 {
        code as f32 * self.scale
    }
}

/// An int8-quantized tensor (symmetric, per-tensor scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    codes: Vec<i8>,
    dims: Vec<usize>,
    params: QuantParams,
}

impl QuantizedTensor {
    /// Quantizes a float tensor.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (empty/non-finite input).
    pub fn quantize(tensor: &Tensor) -> Result<Self> {
        let params = QuantParams::fit(tensor.data())?;
        let codes = tensor.data().iter().map(|&v| params.quantize(v)).collect();
        Ok(QuantizedTensor {
            codes,
            dims: tensor.dims().to_vec(),
            params,
        })
    }

    /// The int8 codes (row-major).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Reconstructs the float tensor.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed value; returns tensor construction
    /// errors otherwise.
    pub fn dequantize(&self) -> Result<Tensor> {
        Ok(Tensor::from_vec(
            self.codes
                .iter()
                .map(|&c| self.params.dequantize(c))
                .collect(),
            self.dims.clone(),
        )?)
    }

    /// Worst-case absolute rounding error of this encoding.
    pub fn max_quantization_error(&self) -> f32 {
        self.params.scale * 0.5
    }

    /// Corrupts the codes the way a faulty weight-register array would for
    /// a `(out, in)` weight tensor mapped onto `map` (same mapping rule as
    /// [`crate::fap_mask`]): every faulty position's code becomes
    /// `stuck_code`.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] if the tensor is not rank-2.
    pub fn with_stuck_codes(&self, map: &FaultMap, stuck_code: i8) -> Result<QuantizedTensor> {
        if self.dims.len() != 2 {
            return Err(SystolicError::BadGeometry {
                reason: format!("expected rank-2 weights, got {:?}", self.dims),
            });
        }
        let (out_dim, in_dim) = (self.dims[0], self.dims[1]);
        let (rows, cols) = (map.rows(), map.cols());
        let mut corrupted = self.clone();
        for j in 0..out_dim {
            let col = j % cols;
            for i in 0..in_dim {
                if map.is_faulty(i % rows, col) {
                    corrupted.codes[j * in_dim + i] = stuck_code;
                }
            }
        }
        Ok(corrupted)
    }
}

/// Integer-exact GEMM reference: `out[m][j] = Σ_i x_codes·w_codes` in i32,
/// rescaled to float by the product of the two scales — the arithmetic the
/// int8 array actually performs.
///
/// `x_q` is `(m, in)`, `w_q` is `(out, in)`; the result is `(m, out)`.
///
/// # Errors
///
/// Returns [`SystolicError::BadGeometry`] on shape mismatch.
pub fn quantized_gemm_nt(x_q: &QuantizedTensor, w_q: &QuantizedTensor) -> Result<Tensor> {
    if x_q.dims.len() != 2 || w_q.dims.len() != 2 || x_q.dims[1] != w_q.dims[1] {
        return Err(SystolicError::BadGeometry {
            reason: format!(
                "quantized gemm shapes {:?} x {:?} not conformable",
                x_q.dims, w_q.dims
            ),
        });
    }
    let (m, k) = (x_q.dims[0], x_q.dims[1]);
    let out_dim = w_q.dims[0];
    let rescale = x_q.params.scale * w_q.params.scale;
    let mut out = Tensor::zeros([m, out_dim]);
    for mm in 0..m {
        for j in 0..out_dim {
            let mut acc: i32 = 0;
            for i in 0..k {
                acc += x_q.codes[mm * k + i] as i32 * w_q.codes[j * k + i] as i32;
            }
            out.data_mut()[mm * out_dim + j] = acc as f32 * rescale;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use reduce_tensor::ops;

    #[test]
    fn round_trip_error_is_bounded() {
        let t = Tensor::rand_uniform([64], -2.0, 2.0, 1);
        let q = QuantizedTensor::quantize(&t).expect("finite data");
        let back = q.dequantize().expect("well-formed");
        let bound = q.max_quantization_error();
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= bound + 1e-6, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn codes_cover_full_range() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 1.0], [3]).expect("ok");
        let q = QuantizedTensor::quantize(&t).expect("finite data");
        assert_eq!(q.codes(), &[-127, 0, 127]);
        assert_eq!(q.dims(), &[3]);
    }

    #[test]
    fn zero_tensor_quantizes() {
        let q = QuantizedTensor::quantize(&Tensor::zeros([4])).expect("finite data");
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.dequantize().expect("ok").sum(), 0.0);
    }

    #[test]
    fn fit_validation() {
        assert!(QuantParams::fit(&[]).is_err());
        assert!(QuantParams::fit(&[f32::NAN]).is_err());
        assert!(QuantParams::fit(&[f32::INFINITY]).is_err());
    }

    #[test]
    fn quantized_gemm_approximates_float_gemm() {
        let x = Tensor::rand_uniform([4, 16], -1.0, 1.0, 2);
        let w = Tensor::rand_uniform([6, 16], -1.0, 1.0, 3);
        let xq = QuantizedTensor::quantize(&x).expect("finite data");
        let wq = QuantizedTensor::quantize(&w).expect("finite data");
        let qout = quantized_gemm_nt(&xq, &wq).expect("conformable");
        let fout = ops::matmul_nt(&x, &w).expect("conformable");
        // Error per output ~ k * (scale_x*|w| + scale_w*|x|) / 2; generous
        // bound for k=16, unit-range data.
        assert!(
            qout.approx_eq(&fout, 0.15),
            "quantized GEMM too far from float: {:?}",
            (&qout - &fout)
        );
        assert!(quantized_gemm_nt(
            &xq,
            &QuantizedTensor::quantize(&Tensor::zeros([2, 3])).expect("finite data")
        )
        .is_err());
    }

    #[test]
    fn stuck_codes_corrupt_exactly_faulty_positions() {
        let map = FaultMap::generate(4, 4, 0.3, FaultModel::Random, 4).expect("valid rate");
        let w = Tensor::rand_uniform([8, 8], -1.0, 1.0, 5);
        let wq = QuantizedTensor::quantize(&w).expect("finite data");
        let bad = wq.with_stuck_codes(&map, 127).expect("rank 2");
        let mask = crate::mapping::fap_mask(8, 8, &map).expect("nonzero");
        for ((orig, corrupt), m) in wq.codes().iter().zip(bad.codes()).zip(mask.data()) {
            if *m == 0.0 {
                assert_eq!(*corrupt, 127);
            } else {
                assert_eq!(corrupt, orig);
            }
        }
        // Worst-case float damage of a stuck code is ±127·scale.
        let damage = bad.dequantize().expect("ok");
        assert!(damage.max() <= 127.0 * wq.params().scale + 1e-5);
        // Rank validation.
        let v = QuantizedTensor::quantize(&Tensor::zeros([4])).expect("finite data");
        assert!(v.with_stuck_codes(&map, 0).is_err());
    }

    #[test]
    fn stuck_zero_code_equals_fap_semantics() {
        // FAP's bypass is representable exactly: code 0.
        let map = FaultMap::generate(4, 4, 0.25, FaultModel::Random, 6).expect("valid rate");
        let w = Tensor::rand_uniform([8, 8], -1.0, 1.0, 7);
        let wq = QuantizedTensor::quantize(&w).expect("finite data");
        let zeroed = wq.with_stuck_codes(&map, 0).expect("rank 2");
        let deq = zeroed.dequantize().expect("ok");
        let mask = crate::mapping::fap_mask(8, 8, &map).expect("nonzero");
        for (v, m) in deq.data().iter().zip(mask.data()) {
            if *m == 0.0 {
                assert_eq!(*v, 0.0);
            }
        }
    }
}
