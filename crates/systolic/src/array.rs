//! Functional emulation of the faulty weight-stationary array.
//!
//! [`SystolicArray::gemm`] computes a GEMM the way the FAP-equipped
//! hardware would — skipping the contribution of every weight mapped onto a
//! bypassed (faulty) PE. It is the *oracle* the much faster mask-based path
//! (`fap_mask` + dense GEMM) is validated against: the two must agree
//! bit-for-bit in structure, which the crate's tests and the cross-crate
//! integration tests assert.

use crate::error::{Result, SystolicError};
use crate::fault::FaultMap;
use reduce_tensor::Tensor;

/// A `rows × cols` weight-stationary systolic array with a fault map.
///
/// # Examples
///
/// ```
/// use reduce_systolic::{FaultMap, SystolicArray};
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_systolic::SystolicError> {
/// let array = SystolicArray::new(FaultMap::fault_free(8, 8)?);
/// let w = Tensor::ones([4, 4]);
/// let x = Tensor::ones([2, 4]);
/// let y = array.gemm(&w, &x)?; // fault-free: plain GEMM
/// assert_eq!(y.data(), &[4.0; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicArray {
    fault_map: FaultMap,
}

impl SystolicArray {
    /// Creates an array around a fault map (the map fixes the geometry).
    pub fn new(fault_map: FaultMap) -> Self {
        SystolicArray { fault_map }
    }

    /// Creates a fault-free array.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] for zero dimensions.
    pub fn fault_free(rows: usize, cols: usize) -> Result<Self> {
        Ok(SystolicArray {
            fault_map: FaultMap::fault_free(rows, cols)?,
        })
    }

    /// Array row count.
    pub fn rows(&self) -> usize {
        self.fault_map.rows()
    }

    /// Array column count.
    pub fn cols(&self) -> usize {
        self.fault_map.cols()
    }

    /// The chip's fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// Executes `y = x · Wᵀ` (`W: (out, in)`, `x: (batch, in)`) with faulty
    /// PEs bypassed, exactly as the FAP hardware would.
    ///
    /// This is a functional reference model (per-element skip), not the
    /// fast path; use `fap_mask` + a dense GEMM for training.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `W` and `x` disagree on the input
    /// dimension.
    pub fn gemm(&self, weight: &Tensor, x: &Tensor) -> Result<Tensor> {
        let (out_dim, in_dim) = weight.shape().as_matrix()?;
        let (batch, in_x) = x.shape().as_matrix()?;
        if in_dim != in_x {
            return Err(SystolicError::Tensor(
                reduce_tensor::TensorError::ShapeMismatch {
                    op: "systolic_gemm",
                    lhs: weight.dims().to_vec(),
                    rhs: x.dims().to_vec(),
                },
            ));
        }
        let (rows, cols) = (self.rows(), self.cols());
        let mut y = Tensor::zeros([batch, out_dim]);
        let (wd, xd, yd) = (weight.data(), x.data(), y.data_mut());
        for b in 0..batch {
            for j in 0..out_dim {
                let col = j % cols;
                let mut acc = 0.0f32;
                for i in 0..in_dim {
                    if self.fault_map.is_faulty(i % rows, col) {
                        continue; // bypassed PE contributes nothing
                    }
                    acc += wd[j * in_dim + i] * xd[b * in_dim + i];
                }
                yd[b * out_dim + j] = acc;
            }
        }
        Ok(y)
    }

    /// Number of tiles a `(out, in)` weight matrix occupies on this array.
    pub fn tiles(&self, out_dim: usize, in_dim: usize) -> (usize, usize) {
        (in_dim.div_ceil(self.rows()), out_dim.div_ceil(self.cols()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use crate::mapping::fap_mask;
    use reduce_tensor::ops;

    #[test]
    fn fault_free_matches_dense_gemm() {
        let array = SystolicArray::fault_free(4, 4).expect("nonzero");
        let w = Tensor::rand_uniform([6, 10], -1.0, 1.0, 1);
        let x = Tensor::rand_uniform([3, 10], -1.0, 1.0, 2);
        let y = array.gemm(&w, &x).expect("conformable");
        let dense = ops::matmul_nt(&x, &w).expect("conformable");
        assert!(y.approx_eq(&dense, 1e-4));
    }

    #[test]
    fn faulty_gemm_equals_masked_dense_gemm() {
        // The core semantic identity of FAP: hardware bypass == weight mask.
        for seed in 0..4 {
            let map = FaultMap::generate(4, 6, 0.25, FaultModel::Random, seed).expect("valid");
            let array = SystolicArray::new(map.clone());
            let w = Tensor::rand_uniform([10, 9], -1.0, 1.0, seed + 10);
            let x = Tensor::rand_uniform([5, 9], -1.0, 1.0, seed + 20);
            let hw = array.gemm(&w, &x).expect("conformable");
            let mask = fap_mask(10, 9, &map).expect("nonzero");
            let masked_w = (&w * &mask).expect("same shape");
            let sw = ops::matmul_nt(&x, &masked_w).expect("conformable");
            assert!(hw.approx_eq(&sw, 1e-4), "seed {seed}: bypass != mask");
        }
    }

    #[test]
    fn all_faulty_yields_zero() {
        let map = FaultMap::generate(2, 2, 1.0, FaultModel::Random, 0).expect("valid");
        let array = SystolicArray::new(map);
        let w = Tensor::ones([4, 4]);
        let x = Tensor::ones([1, 4]);
        let y = array.gemm(&w, &x).expect("conformable");
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn gemm_validates_shapes() {
        let array = SystolicArray::fault_free(2, 2).expect("nonzero");
        assert!(array
            .gemm(&Tensor::ones([2, 3]), &Tensor::ones([1, 4]))
            .is_err());
        assert!(array
            .gemm(&Tensor::ones([3]), &Tensor::ones([1, 3]))
            .is_err());
    }

    #[test]
    fn tile_counting() {
        let array = SystolicArray::fault_free(8, 8).expect("nonzero");
        assert_eq!(array.tiles(16, 16), (2, 2));
        assert_eq!(array.tiles(17, 1), (1, 3));
        assert_eq!(array.tiles(8, 8), (1, 1));
    }
}
