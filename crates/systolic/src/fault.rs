//! Permanent-fault maps for the PE array.
//!
//! Following the paper (and Zhang et al., VTS'18), a chip's manufacturing
//! defects are summarised as a per-PE boolean **fault map**: a faulty PE has
//! a permanent defect in its MAC datapath and is bypassed by the
//! Fault-Aware-Pruning hardware, so every weight mapped onto it contributes
//! zero. The paper uses a uniform-random fault-injection model; a clustered
//! (radial) model is provided as an extension, since real defects correlate
//! spatially.

use crate::error::{Result, SystolicError};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fault-injection model used to generate a fault map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Uniform-random faulty PEs (the paper's model): exactly
    /// `round(rate · rows · cols)` distinct PEs are faulty.
    Random,
    /// Spatially clustered faults: cluster centres are drawn uniformly and
    /// faults fall around them with Gaussian radius `sigma` (in PE units).
    /// The total faulty-PE count still matches the requested rate.
    Clustered {
        /// Number of defect clusters.
        clusters: usize,
        /// Gaussian radius of each cluster, in PEs.
        sigma: f32,
    },
}

/// A per-PE permanent-fault map for a `rows × cols` array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    /// Row-major flags; `true` = faulty (bypassed) PE.
    faulty: Vec<bool>,
}

impl FaultMap {
    /// Creates a fault-free map.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] for a zero-sized array.
    pub fn fault_free(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(SystolicError::BadGeometry {
                reason: format!("array {rows}x{cols} has a zero dimension"),
            });
        }
        Ok(FaultMap {
            rows,
            cols,
            faulty: vec![false; rows * cols],
        })
    }

    /// Generates a fault map with the given model and fault rate.
    ///
    /// The number of faulty PEs is exactly `round(rate · rows · cols)`, so
    /// [`FaultMap::fault_rate`] reproduces `rate` up to rounding.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] unless `0 ≤ rate ≤ 1`, or
    /// [`SystolicError::BadGeometry`] for a zero-sized array.
    ///
    /// # Examples
    ///
    /// ```
    /// use reduce_systolic::{FaultMap, FaultModel};
    ///
    /// # fn main() -> Result<(), reduce_systolic::SystolicError> {
    /// let map = FaultMap::generate(256, 256, 0.05, FaultModel::Random, 42)?;
    /// assert!((map.fault_rate() - 0.05).abs() < 1e-4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(
        rows: usize,
        cols: usize,
        rate: f64,
        model: FaultModel,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(SystolicError::InvalidConfig {
                what: format!("fault rate {rate} not in [0, 1]"),
            });
        }
        let mut map = Self::fault_free(rows, cols)?;
        let total = rows * cols;
        let target = (rate * total as f64).round() as usize;
        if target == 0 {
            return Ok(map);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match model {
            FaultModel::Random => {
                let mut indices: Vec<usize> = (0..total).collect();
                indices.shuffle(&mut rng);
                for &i in indices.iter().take(target) {
                    map.faulty[i] = true;
                }
            }
            FaultModel::Clustered { clusters, sigma } => {
                if clusters == 0 || sigma <= 0.0 {
                    return Err(SystolicError::InvalidConfig {
                        what: format!(
                            "clustered model needs clusters > 0 and sigma > 0, got {clusters}, {sigma}"
                        ),
                    });
                }
                let centres: Vec<(f32, f32)> = (0..clusters)
                    .map(|_| {
                        (
                            rng.gen_range(0.0..rows as f32),
                            rng.gen_range(0.0..cols as f32),
                        )
                    })
                    .collect();
                let mut placed = 0usize;
                // Rejection-sample around centres until the target count of
                // distinct faulty PEs is reached.
                let mut attempts = 0usize;
                while placed < target && attempts < 1000 * target {
                    attempts += 1;
                    let &(cr, cc) =
                        centres
                            .choose(&mut rng)
                            .ok_or_else(|| SystolicError::Internal {
                                invariant: "clusters > 0 was validated above".to_string(),
                            })?;
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let radius = sigma * (-2.0 * u1.ln()).sqrt();
                    let angle = 2.0 * std::f32::consts::PI * u2;
                    let r = (cr + radius * angle.cos()).round();
                    let c = (cc + radius * angle.sin()).round();
                    if r < 0.0 || c < 0.0 || r >= rows as f32 || c >= cols as f32 {
                        continue;
                    }
                    let idx = r as usize * cols + c as usize;
                    if !map.faulty[idx] {
                        map.faulty[idx] = true;
                        placed += 1;
                    }
                }
                // Extremely tight geometries may not fit the count near the
                // clusters; fall back to uniform for the remainder.
                if placed < target {
                    let mut rest: Vec<usize> = (0..total).filter(|&i| !map.faulty[i]).collect();
                    rest.shuffle(&mut rng);
                    for &i in rest.iter().take(target - placed) {
                        map.faulty[i] = true;
                    }
                }
            }
        }
        Ok(map)
    }

    /// Creates a map from explicit faulty coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] for out-of-range coordinates
    /// or a zero-sized array.
    pub fn from_coords(rows: usize, cols: usize, coords: &[(usize, usize)]) -> Result<Self> {
        let mut map = Self::fault_free(rows, cols)?;
        for &(r, c) in coords {
            if r >= rows || c >= cols {
                return Err(SystolicError::BadGeometry {
                    reason: format!("PE ({r}, {c}) outside {rows}x{cols} array"),
                });
            }
            map.faulty[r * cols + c] = true;
        }
        Ok(map)
    }

    /// Array row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether PE `(row, col)` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range (callers index within the
    /// array by construction; use [`FaultMap::rows`]/[`FaultMap::cols`] to
    /// bound-check first).
    pub fn is_faulty(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.rows && col < self.cols,
            "PE ({row}, {col}) out of range"
        );
        self.faulty[row * self.cols + col]
    }

    /// Number of faulty PEs.
    pub fn faulty_count(&self) -> usize {
        self.faulty.iter().filter(|&&f| f).count()
    }

    /// Fraction of faulty PEs — the **chip fault rate** the Reduce policy
    /// interpolates on.
    pub fn fault_rate(&self) -> f64 {
        self.faulty_count() as f64 / (self.rows * self.cols) as f64
    }

    /// Number of faulty PEs in array column `col` (used by fault-aware
    /// mapping to rank columns).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_fault_count(&self, col: usize) -> usize {
        assert!(col < self.cols, "column {col} out of range");
        (0..self.rows)
            .filter(|&r| self.faulty[r * self.cols + col])
            .count()
    }

    /// Number of faulty PEs in array row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_fault_count(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        (0..self.cols)
            .filter(|&c| self.faulty[row * self.cols + c])
            .count()
    }

    /// Iterates over faulty PE coordinates in row-major order.
    pub fn faulty_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        self.faulty
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(move |(i, _)| (i / cols, i % cols))
    }

    /// Renders the map as an ASCII density grid of at most
    /// `max_dim × max_dim` characters (` `, `.`, `:`, `#` by local fault
    /// density) — a quick visual for logs and examples.
    pub fn render_ascii(&self, max_dim: usize) -> String {
        let max_dim = max_dim.max(1);
        let (gr, gc) = (self.rows.min(max_dim), self.cols.min(max_dim));
        let mut out = String::with_capacity((gc + 3) * (gr + 2));
        out.push('+');
        out.push_str(&"-".repeat(gc));
        out.push_str("+\n");
        for br in 0..gr {
            out.push('|');
            let r0 = br * self.rows / gr;
            let r1 = ((br + 1) * self.rows / gr).max(r0 + 1);
            for bc in 0..gc {
                let c0 = bc * self.cols / gc;
                let c1 = ((bc + 1) * self.cols / gc).max(c0 + 1);
                let cells = (r1 - r0) * (c1 - c0);
                let faults = (r0..r1)
                    .flat_map(|r| (c0..c1).map(move |c| (r, c)))
                    .filter(|&(r, c)| self.faulty[r * self.cols + c])
                    .count();
                let density = faults as f32 / cells as f32;
                // xtask:allow(float-eq): density == 0.0 iff the integer fault count was 0
                out.push(if density == 0.0 {
                    ' '
                } else if density < 0.25 {
                    '.'
                } else if density < 0.6 {
                    ':'
                } else {
                    '#'
                });
            }
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(gc));
        out.push_str("+\n");
        out
    }

    /// Merges another map of identical geometry (union of faults) — models
    /// in-field aging on top of manufacturing defects.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::BadGeometry`] on geometry mismatch.
    pub fn union(&self, other: &FaultMap) -> Result<FaultMap> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SystolicError::BadGeometry {
                reason: format!(
                    "cannot union {}x{} with {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let faulty = self
            .faulty
            .iter()
            .zip(&other.faulty)
            .map(|(&a, &b)| a || b)
            .collect();
        Ok(FaultMap {
            rows: self.rows,
            cols: self.cols,
            faulty,
        })
    }
}

impl fmt::Display for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultMap({}x{}, {} faulty, rate {:.3}%)",
            self.rows,
            self.cols,
            self.faulty_count(),
            self.fault_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_is_clean() {
        let m = FaultMap::fault_free(4, 4).expect("nonzero dims");
        assert_eq!(m.faulty_count(), 0);
        assert_eq!(m.fault_rate(), 0.0);
        assert!(FaultMap::fault_free(0, 4).is_err());
    }

    #[test]
    fn random_hits_exact_count() {
        let m = FaultMap::generate(32, 32, 0.1, FaultModel::Random, 1).expect("valid");
        assert_eq!(m.faulty_count(), 102); // round(0.1 * 1024)
        assert!((m.fault_rate() - 0.0996).abs() < 1e-3);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = FaultMap::generate(16, 16, 0.2, FaultModel::Random, 7).expect("valid");
        let b = FaultMap::generate(16, 16, 0.2, FaultModel::Random, 7).expect("valid");
        let c = FaultMap::generate(16, 16, 0.2, FaultModel::Random, 8).expect("valid");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_bounds_checked() {
        assert!(FaultMap::generate(4, 4, 1.5, FaultModel::Random, 0).is_err());
        assert!(FaultMap::generate(4, 4, -0.1, FaultModel::Random, 0).is_err());
        // Extremes are fine.
        let all = FaultMap::generate(4, 4, 1.0, FaultModel::Random, 0).expect("valid");
        assert_eq!(all.faulty_count(), 16);
        let none = FaultMap::generate(4, 4, 0.0, FaultModel::Random, 0).expect("valid");
        assert_eq!(none.faulty_count(), 0);
    }

    #[test]
    fn clustered_matches_count_and_clusters() {
        let m = FaultMap::generate(
            64,
            64,
            0.05,
            FaultModel::Clustered {
                clusters: 2,
                sigma: 3.0,
            },
            3,
        )
        .expect("valid");
        assert_eq!(m.faulty_count(), (0.05f64 * 4096.0).round() as usize);
        // Clustered faults concentrate on few distinct rows/columns, while
        // ~205 uniform faults would touch nearly all 64 rows. Unlike a
        // global-variance check (bimodal when the two centres land near
        // opposite edges), occupancy is robust to where the centres fall.
        let coords: Vec<(usize, usize)> = m.faulty_coords().collect();
        let distinct_rows = coords
            .iter()
            .map(|&(r, _)| r)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let distinct_cols = coords
            .iter()
            .map(|&(_, c)| c)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        // Two sigma=3 clusters span ~2 * 6 sigma = 36 rows at the extreme.
        assert!(
            distinct_rows < 48,
            "clustered faults touch {distinct_rows}/64 rows"
        );
        assert!(
            distinct_cols < 48,
            "clustered faults touch {distinct_cols}/64 cols"
        );
    }

    #[test]
    fn clustered_validation() {
        assert!(FaultMap::generate(
            8,
            8,
            0.1,
            FaultModel::Clustered {
                clusters: 0,
                sigma: 1.0
            },
            0
        )
        .is_err());
        assert!(FaultMap::generate(
            8,
            8,
            0.1,
            FaultModel::Clustered {
                clusters: 1,
                sigma: 0.0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn from_coords_and_accessors() {
        let m = FaultMap::from_coords(4, 4, &[(0, 1), (2, 3), (2, 1)]).expect("in range");
        assert!(m.is_faulty(0, 1));
        assert!(!m.is_faulty(0, 0));
        assert_eq!(m.column_fault_count(1), 2);
        assert_eq!(m.row_fault_count(2), 2);
        assert_eq!(m.faulty_coords().count(), 3);
        assert!(FaultMap::from_coords(4, 4, &[(4, 0)]).is_err());
    }

    #[test]
    fn union_accumulates() {
        let a = FaultMap::from_coords(2, 2, &[(0, 0)]).expect("in range");
        let b = FaultMap::from_coords(2, 2, &[(1, 1)]).expect("in range");
        let u = a.union(&b).expect("same geometry");
        assert_eq!(u.faulty_count(), 2);
        let c = FaultMap::fault_free(3, 2).expect("nonzero dims");
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn display_mentions_rate() {
        let m = FaultMap::generate(10, 10, 0.25, FaultModel::Random, 0).expect("valid");
        assert!(m.to_string().contains("25 faulty"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn is_faulty_panics_out_of_range() {
        let m = FaultMap::fault_free(2, 2).expect("nonzero dims");
        let _ = m.is_faulty(2, 0);
    }

    #[test]
    fn ascii_rendering() {
        let clean = FaultMap::fault_free(4, 4).expect("nonzero dims");
        let art = clean.render_ascii(8);
        assert!(art.lines().count() == 6); // border + 4 rows + border
        assert!(!art.contains('#'));
        let dead = FaultMap::generate(4, 4, 1.0, FaultModel::Random, 0).expect("valid");
        assert!(dead.render_ascii(4).contains('#'));
        // Downsampling keeps the grid bounded.
        let big = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 1).expect("valid");
        let art = big.render_ascii(32);
        assert!(art.lines().all(|l| l.len() <= 34));
        assert_eq!(art.lines().count(), 34);
    }

    #[test]
    fn paper_scale_256x256() {
        let m = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 11).expect("valid");
        assert_eq!(m.rows(), 256);
        assert_eq!(m.faulty_count(), (0.02f64 * 65536.0).round() as usize);
    }
}
