//! Error types for the systolic-array model.

use reduce_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by the accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub enum SystolicError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A dimension or coordinate was invalid for the array.
    BadGeometry {
        /// What was wrong.
        reason: String,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// What configuration was invalid.
        what: String,
    },
    /// An internal invariant was violated — always a bug in this crate,
    /// surfaced as an error instead of a panic so callers fail softly.
    Internal {
        /// The invariant that no longer held.
        invariant: String,
    },
}

impl fmt::Display for SystolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystolicError::Tensor(e) => write!(f, "tensor error: {e}"),
            SystolicError::BadGeometry { reason } => write!(f, "bad geometry: {reason}"),
            SystolicError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SystolicError::Internal { invariant } => {
                write!(f, "internal invariant violated: {invariant}")
            }
        }
    }
}

impl Error for SystolicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystolicError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SystolicError {
    fn from(e: TensorError) -> Self {
        SystolicError::Tensor(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SystolicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = SystolicError::BadGeometry {
            reason: "row 300 on a 256-row array".into(),
        };
        assert!(e.to_string().contains("bad geometry"));
        assert!(e.source().is_none());
        let t: SystolicError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(t.source().is_some());
    }
}
