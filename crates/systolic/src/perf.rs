//! Cycle-level performance and energy model of the accelerator.
//!
//! The model follows the classic weight-stationary tiling analysis (as in
//! Zhang et al., VTS'18): a `(out, in)` GEMM with `m` input vectors runs in
//! `⌈in/R⌉ · ⌈out/C⌉` tiles; each tile loads its weights (`R` cycles,
//! double-buffered loads can hide part of this) and streams the `m`
//! activations through the pipeline (`m + R + C − 2` cycles of fill +
//! drain + stream).
//!
//! FAP bypasses do **not** change the cycle count — faulty PEs still occupy
//! their pipeline slot, they just contribute zero — which is exactly the
//! paper's argument that FAP(+T) preserves performance, unlike
//! redundancy/bypass-row schemes. The model therefore charges retraining
//! overhead in *epochs* (the unit the paper uses) and converts to
//! cycles/energy for reporting.

use crate::error::{Result, SystolicError};
use serde::{Deserialize, Serialize};

/// Static cost parameters of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Clock frequency in MHz (for cycle → time conversion).
    pub frequency_mhz: f64,
    /// Energy per MAC in picojoules (for energy reporting).
    pub energy_per_mac_pj: f64,
    /// Cycles to load one tile of weights (R rows, amortised); set to 0 to
    /// model perfect double buffering.
    pub weight_load_cycles: u64,
}

impl CostModel {
    /// The paper's configuration: a 256×256 array (TPU-like).
    pub fn paper() -> Self {
        CostModel {
            rows: 256,
            cols: 256,
            frequency_mhz: 700.0,
            energy_per_mac_pj: 0.2,
            weight_load_cycles: 256,
        }
    }

    /// A small configuration matching the CPU-scale experiments.
    pub fn small(rows: usize, cols: usize) -> Self {
        CostModel {
            rows,
            cols,
            frequency_mhz: 700.0,
            energy_per_mac_pj: 0.2,
            weight_load_cycles: rows as u64,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 || self.frequency_mhz <= 0.0 {
            return Err(SystolicError::InvalidConfig {
                what: format!("cost model rejected: {self:?}"),
            });
        }
        Ok(())
    }

    /// Cycles to run a `(out, in)` GEMM over `m` input vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] for a degenerate model or
    /// zero dimensions.
    pub fn gemm_cycles(&self, m: usize, in_dim: usize, out_dim: usize) -> Result<u64> {
        self.validate()?;
        if m == 0 || in_dim == 0 || out_dim == 0 {
            return Err(SystolicError::InvalidConfig {
                what: format!("gemm {m}x{in_dim}x{out_dim} has a zero dimension"),
            });
        }
        let tiles = (in_dim.div_ceil(self.rows) * out_dim.div_ceil(self.cols)) as u64;
        let per_tile = self.weight_load_cycles + (m + self.rows + self.cols - 2) as u64;
        Ok(tiles * per_tile)
    }

    /// MAC count of a `(out, in)` GEMM over `m` inputs.
    pub fn gemm_macs(&self, m: usize, in_dim: usize, out_dim: usize) -> u64 {
        (m as u64) * (in_dim as u64) * (out_dim as u64)
    }

    /// Cycles for a full forward pass described by GEMM shapes
    /// `(m, in, out)` per layer.
    ///
    /// # Errors
    ///
    /// Propagates per-layer errors.
    pub fn forward_cycles(&self, layers: &[(usize, usize, usize)]) -> Result<u64> {
        let mut total = 0u64;
        for &(m, i, o) in layers {
            total += self.gemm_cycles(m, i, o)?;
        }
        Ok(total)
    }

    /// Cycles for one training step (forward + input-gradient + weight-
    /// gradient GEMMs ≈ 3× forward for GEMM-dominated nets).
    ///
    /// # Errors
    ///
    /// Propagates per-layer errors.
    pub fn training_step_cycles(&self, layers: &[(usize, usize, usize)]) -> Result<u64> {
        Ok(3 * self.forward_cycles(layers)?)
    }

    /// Cycles for one training epoch of `samples` examples at `batch` size.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] for zero samples/batch.
    pub fn epoch_cycles(
        &self,
        layers_per_batch: &[(usize, usize, usize)],
        samples: usize,
        batch: usize,
    ) -> Result<u64> {
        if samples == 0 || batch == 0 {
            return Err(SystolicError::InvalidConfig {
                what: format!("epoch with {samples} samples, batch {batch}"),
            });
        }
        let batches = samples.div_ceil(batch) as u64;
        Ok(batches * self.training_step_cycles(layers_per_batch)?)
    }

    /// Converts cycles to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.frequency_mhz * 1e6)
    }

    /// Converts MACs to joules at the configured energy/MAC.
    pub fn macs_to_joules(&self, macs: u64) -> f64 {
        macs as f64 * self.energy_per_mac_pj * 1e-12
    }

    /// Array utilisation of a `(out, in)` GEMM: useful MACs over the MAC
    /// slots the tiling occupies (edge tiles waste slots).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidConfig`] for zero dimensions.
    pub fn utilization(&self, in_dim: usize, out_dim: usize) -> Result<f64> {
        self.validate()?;
        if in_dim == 0 || out_dim == 0 {
            return Err(SystolicError::InvalidConfig {
                what: "utilization of empty GEMM".to_string(),
            });
        }
        let tiles_i = in_dim.div_ceil(self.rows);
        let tiles_j = out_dim.div_ceil(self.cols);
        let occupied = (tiles_i * self.rows) as f64 * (tiles_j * self.cols) as f64;
        Ok((in_dim as f64 * out_dim as f64) / occupied)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_geometry() {
        let m = CostModel::paper();
        assert_eq!((m.rows, m.cols), (256, 256));
    }

    #[test]
    fn single_tile_cycle_count() {
        let m = CostModel::small(8, 8);
        // One tile: load (8) + stream (4 + 8 + 8 - 2 = 18) = 26.
        assert_eq!(m.gemm_cycles(4, 8, 8).expect("valid"), 26);
    }

    #[test]
    fn tiling_multiplies_cycles() {
        let m = CostModel::small(8, 8);
        let one = m.gemm_cycles(4, 8, 8).expect("valid");
        let four = m.gemm_cycles(4, 16, 16).expect("valid");
        assert_eq!(four, 4 * one);
        // Ragged edges round the tile count up.
        let ragged = m.gemm_cycles(4, 9, 8).expect("valid");
        assert_eq!(ragged, 2 * one);
    }

    #[test]
    fn training_is_three_forwards() {
        let m = CostModel::small(16, 16);
        let layers = [(32, 64, 128), (32, 128, 10)];
        let f = m.forward_cycles(&layers).expect("valid");
        assert_eq!(m.training_step_cycles(&layers).expect("valid"), 3 * f);
    }

    #[test]
    fn epoch_scales_with_batches() {
        let m = CostModel::small(16, 16);
        let layers = [(8, 64, 64)];
        let one = m.epoch_cycles(&layers, 8, 8).expect("valid");
        let ten = m.epoch_cycles(&layers, 80, 8).expect("valid");
        assert_eq!(ten, 10 * one);
        assert!(m.epoch_cycles(&layers, 0, 8).is_err());
    }

    #[test]
    fn conversions() {
        let m = CostModel::small(8, 8);
        assert!((m.cycles_to_seconds(700_000_000) - 1.0).abs() < 1e-9);
        assert!((m.macs_to_joules(5_000_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(m.gemm_macs(2, 3, 4), 24);
    }

    #[test]
    fn utilization_full_and_ragged() {
        let m = CostModel::small(8, 8);
        assert!((m.utilization(16, 16).expect("valid") - 1.0).abs() < 1e-12);
        // A 9x8 GEMM occupies 2x1 tiles = 128 slots for 72 weights.
        assert!((m.utilization(9, 8).expect("valid") - 72.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let mut m = CostModel::small(8, 8);
        m.rows = 0;
        assert!(m.gemm_cycles(1, 1, 1).is_err());
        let m = CostModel::small(8, 8);
        assert!(m.gemm_cycles(0, 1, 1).is_err());
        assert!(m.utilization(0, 1).is_err());
    }
}
