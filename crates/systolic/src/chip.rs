//! Simulated fabricated chips and chip fleets.
//!
//! Each fabricated chip carries a unique permanent-fault map; the Reduce
//! framework's whole point is to tune the retraining amount per chip. This
//! module generates seeded fleets of such chips with configurable
//! fault-rate distributions.

use crate::error::{Result, SystolicError};
use crate::fault::{FaultMap, FaultModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of per-chip fault rates across a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateDistribution {
    /// Every chip has the same fault rate.
    Fixed(f64),
    /// Uniform in `[lo, hi]` — the default for the Fig. 3 fleet, spreading
    /// chips across the whole characterised range.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// `Exp(mean)` truncated to `[0, max]` — most chips mildly faulty, a
    /// tail of bad ones; closer to real yield curves.
    TruncatedExponential {
        /// Mean of the exponential before truncation.
        mean: f64,
        /// Truncation point.
        max: f64,
    },
}

impl RateDistribution {
    fn sample<R: Rng>(&self, rng: &mut R) -> Result<f64> {
        match *self {
            RateDistribution::Fixed(r) => {
                if !(0.0..=1.0).contains(&r) {
                    return Err(SystolicError::InvalidConfig {
                        what: format!("fixed rate {r} not in [0, 1]"),
                    });
                }
                Ok(r)
            }
            RateDistribution::Uniform { lo, hi } => {
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                    return Err(SystolicError::InvalidConfig {
                        what: format!("uniform bounds [{lo}, {hi}] invalid"),
                    });
                }
                Ok(if lo == hi { lo } else { rng.gen_range(lo..=hi) })
            }
            RateDistribution::TruncatedExponential { mean, max } => {
                if mean <= 0.0 || !(0.0..=1.0).contains(&max) {
                    return Err(SystolicError::InvalidConfig {
                        what: format!("truncated exponential (mean {mean}, max {max}) invalid"),
                    });
                }
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Ok((-mean * u.ln()).min(max))
            }
        }
    }
}

/// A fabricated accelerator chip: an id plus its unique fault map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chip {
    id: usize,
    fault_map: FaultMap,
}

impl Chip {
    /// Creates a chip from an id and fault map.
    pub fn new(id: usize, fault_map: FaultMap) -> Self {
        Chip { id, fault_map }
    }

    /// The chip's identifier within its fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The chip's fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// The chip's fault rate (fraction of faulty PEs).
    pub fn fault_rate(&self) -> f64 {
        self.fault_map.fault_rate()
    }
}

/// Configuration of a simulated chip fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of chips.
    pub chips: usize,
    /// Array rows per chip.
    pub rows: usize,
    /// Array columns per chip.
    pub cols: usize,
    /// Per-chip fault-rate distribution.
    pub rates: RateDistribution,
    /// Spatial fault model.
    pub model: FaultModel,
    /// Master seed; each chip derives its own stream.
    pub seed: u64,
}

impl FleetConfig {
    /// The paper's Fig. 3 setting: 100 chips on a 256×256 array with
    /// uniform-random fault maps spanning the characterised rate range.
    pub fn paper(max_rate: f64, seed: u64) -> Self {
        FleetConfig {
            chips: 100,
            rows: 256,
            cols: 256,
            rates: RateDistribution::Uniform {
                lo: 0.0,
                hi: max_rate,
            },
            model: FaultModel::Random,
            seed,
        }
    }
}

/// Generates a seeded fleet of chips.
///
/// Chip `i` gets id `i`; its fault rate is drawn from `config.rates` and
/// its map from `config.model`, all derived from `config.seed` so fleets
/// are reproducible.
///
/// # Errors
///
/// Returns [`SystolicError::InvalidConfig`] for zero chips or an invalid
/// distribution, and propagates fault-map generation errors.
///
/// # Examples
///
/// ```
/// use reduce_systolic::{generate_fleet, FleetConfig};
///
/// # fn main() -> Result<(), reduce_systolic::SystolicError> {
/// let mut config = FleetConfig::paper(0.1, 42);
/// config.chips = 5;
/// config.rows = 32;
/// config.cols = 32;
/// let fleet = generate_fleet(&config)?;
/// assert_eq!(fleet.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn generate_fleet(config: &FleetConfig) -> Result<Vec<Chip>> {
    validate_fleet(config)?;
    let mut fleet = Vec::with_capacity(config.chips);
    for id in 0..config.chips {
        fleet.push(generate_chip(config, id)?);
    }
    Ok(fleet)
}

/// Generates chip `id` of the fleet described by `config` without
/// materialising any other chip.
///
/// Each chip owns an independent RNG stream derived from
/// `splitmix64(seed + id)`, so `generate_chip(config, i)` equals
/// `generate_fleet(config)?[i]` while letting streaming consumers pull
/// chips on demand in any order — the intake primitive behind
/// constant-memory fleet evaluation.
///
/// # Errors
///
/// Returns [`SystolicError::InvalidConfig`] for zero chips, an id outside
/// the fleet, or an invalid distribution, and propagates fault-map
/// generation errors.
pub fn generate_chip(config: &FleetConfig, id: usize) -> Result<Chip> {
    validate_fleet(config)?;
    if id >= config.chips {
        return Err(SystolicError::InvalidConfig {
            what: format!("chip id {id} outside fleet of {} chips", config.chips),
        });
    }
    let mut rng = chip_rng(config, id);
    let rate = config.rates.sample(&mut rng)?;
    let map_seed: u64 = rng.gen();
    let map = FaultMap::generate(config.rows, config.cols, rate, config.model, map_seed)?;
    Ok(Chip::new(id, map))
}

/// The fault rate chip `id` would carry after generation — the rate draw
/// of [`generate_chip`] snapped to the whole-PE count the fault map would
/// realise (`round(rate · rows · cols) / (rows · cols)`), without paying
/// for the map itself. Scheduling passes use this to group chips by epoch
/// budget before materialising any of them; the value equals
/// `generate_chip(config, id)?.fault_rate()` for the random fault model.
///
/// # Errors
///
/// Same domain as [`generate_chip`].
pub fn chip_rate(config: &FleetConfig, id: usize) -> Result<f64> {
    validate_fleet(config)?;
    if id >= config.chips {
        return Err(SystolicError::InvalidConfig {
            what: format!("chip id {id} outside fleet of {} chips", config.chips),
        });
    }
    let sampled = config.rates.sample(&mut chip_rng(config, id))?;
    let total = (config.rows * config.cols) as f64;
    Ok((sampled * total).round() / total)
}

fn validate_fleet(config: &FleetConfig) -> Result<()> {
    if config.chips == 0 {
        return Err(SystolicError::InvalidConfig {
            what: "zero chips requested".to_string(),
        });
    }
    Ok(())
}

fn chip_rng(config: &FleetConfig, id: usize) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(config.seed.wrapping_add(id as u64)))
}

/// One splitmix64 mixing round: decorrelates the per-chip seeds so that
/// adjacent ids do not get adjacent (and thus correlated) SmallRng
/// states.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            chips: 20,
            rows: 16,
            cols: 16,
            rates: RateDistribution::Uniform { lo: 0.0, hi: 0.2 },
            model: FaultModel::Random,
            seed: 1,
        }
    }

    #[test]
    fn fleet_has_requested_size_and_ids() {
        let fleet = generate_fleet(&small_config()).expect("valid");
        assert_eq!(fleet.len(), 20);
        for (i, chip) in fleet.iter().enumerate() {
            assert_eq!(chip.id(), i);
            assert!(chip.fault_rate() <= 0.21);
        }
    }

    #[test]
    fn fleet_is_deterministic_and_chips_differ() {
        let a = generate_fleet(&small_config()).expect("valid");
        let b = generate_fleet(&small_config()).expect("valid");
        assert_eq!(a, b);
        // Different chips in the same fleet have different maps.
        assert_ne!(a[0].fault_map(), a[1].fault_map());
    }

    #[test]
    fn per_chip_generation_matches_the_fleet() {
        let cfg = small_config();
        let fleet = generate_fleet(&cfg).expect("valid");
        // Any chip can be regenerated in isolation and in any order.
        for id in [19usize, 0, 7, 3] {
            let chip = generate_chip(&cfg, id).expect("valid id");
            assert_eq!(chip, fleet[id]);
            let rate = chip_rate(&cfg, id).expect("valid id");
            assert_eq!(rate, fleet[id].fault_rate());
        }
        assert!(generate_chip(&cfg, 20).is_err());
        assert!(chip_rate(&cfg, 20).is_err());
        let mut zero = cfg;
        zero.chips = 0;
        assert!(generate_chip(&zero, 0).is_err());
    }

    #[test]
    fn fixed_distribution_gives_constant_rate() {
        let mut cfg = small_config();
        cfg.rates = RateDistribution::Fixed(0.1);
        let fleet = generate_fleet(&cfg).expect("valid");
        for chip in &fleet {
            assert!((chip.fault_rate() - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn truncated_exponential_is_bounded() {
        let mut cfg = small_config();
        cfg.rates = RateDistribution::TruncatedExponential {
            mean: 0.05,
            max: 0.15,
        };
        let fleet = generate_fleet(&cfg).expect("valid");
        assert!(fleet.iter().all(|c| c.fault_rate() <= 0.16));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_config();
        cfg.chips = 0;
        assert!(generate_fleet(&cfg).is_err());
        let mut cfg = small_config();
        cfg.rates = RateDistribution::Uniform { lo: 0.5, hi: 0.2 };
        assert!(generate_fleet(&cfg).is_err());
        let mut cfg = small_config();
        cfg.rates = RateDistribution::Fixed(1.5);
        assert!(generate_fleet(&cfg).is_err());
        let mut cfg = small_config();
        cfg.rates = RateDistribution::TruncatedExponential {
            mean: 0.0,
            max: 0.1,
        };
        assert!(generate_fleet(&cfg).is_err());
    }

    #[test]
    fn paper_preset() {
        let cfg = FleetConfig::paper(0.05, 3);
        assert_eq!(cfg.chips, 100);
        assert_eq!((cfg.rows, cfg.cols), (256, 256));
    }
}
