//! Fault-map similarity and chip clustering — the hardware-side half of
//! the eFAT extension (Hanif & Shafique, arXiv:2304.12949).
//!
//! eFAT's observation is that fault-aware retraining need not start from
//! the pretrained baseline for every chip: chips whose fault maps are
//! *similar* converge to similar weights, so one representative can run
//! full FAT and the rest can warm-start from its converged state. This
//! module provides the two primitives that makes that scheduling decision:
//!
//! * [`fault_map_distance`] — a normalized, symmetric distance in `[0, 1]`
//!   over two fault maps, combining the weighted overlap of faulty-PE
//!   positions (Jaccard distance of the faulty coordinate sets) with a
//!   fault-rate term quantised into resilience-class bands;
//! * [`cluster_fault_maps`] — a pure, deterministic leader-style greedy
//!   clustering pass under a distance threshold: chips are visited in the
//!   caller's order (ascending chip id in the fleet scheduler), each
//!   joining the nearest existing cluster within the threshold or
//!   founding a new one; the highest-fault member is then elected
//!   representative.
//!
//! Both are pure functions of their inputs — no RNG, no clock, no I/O —
//! so cluster assignments are byte-identical across thread counts and
//! kill-and-resume, which is what lets the fleet journal replay them.

use crate::error::{Result, SystolicError};
use crate::fault::FaultMap;

/// Tuning knobs of [`fault_map_distance`] and [`cluster_fault_maps`].
///
/// The distance is the weight-normalized convex combination
/// `(position_weight · overlap + rate_weight · band) / (position_weight +
/// rate_weight)`, so it stays in `[0, 1]` for any non-degenerate weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Maximum distance at which a chip joins an existing cluster leader;
    /// must lie in `[0, 1]`.
    pub threshold: f64,
    /// Weight of the faulty-PE position-overlap term (Jaccard distance).
    pub position_weight: f64,
    /// Weight of the fault-rate / resilience-class band term.
    pub rate_weight: f64,
    /// Width of one resilience-class band in fault-rate units: chips in
    /// different bands get the maximal rate term, chips in the same band
    /// a proportional one. Must be positive.
    pub band_width: f64,
}

impl Default for ClusterConfig {
    /// Defaults tuned for the fleet scheduler, which clusters within
    /// same-epoch-budget groups: random fault maps share few positions
    /// (Jaccard distance near 1), so the position term separates only
    /// genuinely overlapping maps while the band term keeps chips of
    /// different resilience classes apart.
    fn default() -> Self {
        ClusterConfig {
            threshold: 0.85,
            position_weight: 0.5,
            rate_weight: 0.5,
            band_width: 0.05,
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SystolicError::InvalidConfig`] when the threshold leaves `[0, 1]`,
    /// a weight is negative or non-finite, both weights are zero, or the
    /// band width is not strictly positive.
    pub fn validate(&self) -> Result<()> {
        let reject = |what: String| SystolicError::InvalidConfig { what };
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(reject(format!(
                "cluster threshold {} not in [0, 1]",
                self.threshold
            )));
        }
        for (name, w) in [
            ("position_weight", self.position_weight),
            ("rate_weight", self.rate_weight),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(reject(format!(
                    "cluster {name} {w} must be finite and >= 0"
                )));
            }
        }
        if self.position_weight + self.rate_weight <= 0.0 {
            return Err(reject("cluster weights must not both be zero".to_string()));
        }
        if !self.band_width.is_finite() || self.band_width <= 0.0 {
            return Err(reject(format!(
                "cluster band_width {} must be finite and > 0",
                self.band_width
            )));
        }
        Ok(())
    }
}

/// One cluster of fault-similar chips, as produced by
/// [`cluster_fault_maps`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Chip id of the cluster representative — the member with the most
    /// faulty PEs (ties break toward the lowest id). The hardest chip
    /// runs full FAT; the others warm-start from its converged state,
    /// which transfers downhill to their milder fault patterns.
    pub representative: usize,
    /// The other member chip ids, ascending; does not include the
    /// representative.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Total chips in the cluster, including the representative.
    pub fn size(&self) -> usize {
        1 + self.members.len()
    }
}

/// The resilience-class band a fault rate falls into.
fn band(rate: f64, band_width: f64) -> u64 {
    (rate / band_width).floor() as u64
}

/// Normalized weighted distance between two fault maps in `[0, 1]`.
///
/// The position term is the Jaccard distance of the two faulty-PE
/// coordinate sets (`1 − |A∩B| / |A∪B|`; two fault-free maps are at
/// position distance 0). The rate term is maximal when the maps' fault
/// rates fall in different resilience-class bands and proportional to the
/// in-band rate difference otherwise. The metric is symmetric, zero
/// exactly on identical maps, and bounded in `[0, 1]` — properties the
/// test suite checks over seeded map populations.
///
/// # Errors
///
/// [`SystolicError::BadGeometry`] when the maps' geometries differ, and
/// configuration errors per [`ClusterConfig::validate`].
pub fn fault_map_distance(a: &FaultMap, b: &FaultMap, config: &ClusterConfig) -> Result<f64> {
    config.validate()?;
    if (a.rows(), a.cols()) != (b.rows(), b.cols()) {
        return Err(SystolicError::BadGeometry {
            reason: format!(
                "cannot compare a {}x{} fault map with a {}x{} one",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let intersection = a
        .faulty_coords()
        .filter(|&(r, c)| b.is_faulty(r, c))
        .count();
    let union = a.faulty_count() + b.faulty_count() - intersection;
    let position = if union == 0 {
        0.0
    } else {
        1.0 - intersection as f64 / union as f64
    };
    let (ra, rb) = (a.fault_rate(), b.fault_rate());
    let rate = if band(ra, config.band_width) == band(rb, config.band_width) {
        ((ra - rb).abs() / config.band_width).min(1.0)
    } else {
        1.0
    };
    let weight = config.position_weight + config.rate_weight;
    Ok((config.position_weight * position + config.rate_weight * rate) / weight)
}

/// Leader-style greedy clustering of `(chip id, fault map)` pairs under
/// `config.threshold`.
///
/// Maps are visited in slice order (the fleet scheduler passes ascending
/// chip ids). Each chip joins the *nearest* existing cluster founder
/// whose distance is within the threshold — ties break toward the
/// earliest founder — or opens a new cluster otherwise. Once membership
/// is settled, each cluster elects the member with the *most faulty PEs*
/// as its representative (ties break toward the lowest id): eFAT retrains
/// the hardest chip and transfers its converged state downhill, so the
/// milder members start as close to their own optima as possible. The
/// pass is a pure function of its inputs: same maps, same config, same
/// clusters, at any thread count and across resume.
///
/// # Errors
///
/// Configuration errors per [`ClusterConfig::validate`], and
/// [`SystolicError::BadGeometry`] when the maps disagree on geometry.
pub fn cluster_fault_maps(
    maps: &[(usize, &FaultMap)],
    config: &ClusterConfig,
) -> Result<Vec<Cluster>> {
    config.validate()?;
    let mut groups: Vec<Vec<(usize, &FaultMap)>> = Vec::new();
    for &(id, map) in maps {
        let mut best: Option<(usize, f64)> = None;
        for (i, group) in groups.iter().enumerate() {
            let Some(&(_, founder)) = group.first() else {
                continue; // groups are born non-empty
            };
            let d = fault_map_distance(founder, map, config)?;
            if d <= config.threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best.and_then(|(i, _)| groups.get_mut(i)) {
            Some(group) => group.push((id, map)),
            None => groups.push(vec![(id, map)]),
        }
    }
    let clusters = groups
        .into_iter()
        .map(|group| {
            let representative = group
                .iter()
                // max_by_key takes the *last* maximum; compare on
                // (count, Reverse(id)) so ties elect the lowest id.
                .max_by_key(|(id, map)| (map.faulty_count(), std::cmp::Reverse(*id)))
                .map(|(id, _)| *id)
                .unwrap_or_default();
            let mut members: Vec<usize> = group
                .iter()
                .map(|(id, _)| *id)
                .filter(|&id| id != representative)
                .collect();
            members.sort_unstable();
            Cluster {
                representative,
                members,
            }
        })
        .collect();
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;

    fn map(rate: f64, seed: u64) -> FaultMap {
        FaultMap::generate(8, 8, rate, FaultModel::Random, seed).expect("valid rate")
    }

    fn population() -> Vec<FaultMap> {
        let mut maps = Vec::new();
        for seed in 0..12u64 {
            let rate = f64::from(seed as u32 % 6) * 0.05;
            maps.push(map(rate, seed));
        }
        maps
    }

    #[test]
    fn distance_is_symmetric() {
        let cfg = ClusterConfig::default();
        let maps = population();
        for a in &maps {
            for b in &maps {
                let ab = fault_map_distance(a, b, &cfg).expect("same geometry");
                let ba = fault_map_distance(b, a, &cfg).expect("same geometry");
                assert_eq!(ab, ba, "distance must be symmetric");
            }
        }
    }

    #[test]
    fn identical_maps_are_at_distance_zero() {
        let cfg = ClusterConfig::default();
        for m in &population() {
            assert_eq!(
                fault_map_distance(m, m, &cfg).expect("same geometry"),
                0.0,
                "identity of indiscernibles"
            );
        }
        // Two distinct fault-free maps are indiscernible too.
        let clean_a = FaultMap::fault_free(8, 8).expect("valid dims");
        let clean_b = map(0.0, 99);
        assert_eq!(
            fault_map_distance(&clean_a, &clean_b, &cfg).expect("same geometry"),
            0.0
        );
    }

    #[test]
    fn distance_is_bounded_in_unit_interval() {
        let cfg = ClusterConfig::default();
        let maps = population();
        for a in &maps {
            for b in &maps {
                let d = fault_map_distance(a, b, &cfg).expect("same geometry");
                assert!((0.0..=1.0).contains(&d), "distance {d} escapes [0, 1]");
            }
        }
        // Extreme weights keep the bound thanks to normalization.
        let lopsided = ClusterConfig {
            position_weight: 9.0,
            rate_weight: 0.25,
            ..ClusterConfig::default()
        };
        let d = fault_map_distance(&maps[0], &maps[7], &lopsided).expect("same geometry");
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn disjoint_same_band_maps_sit_between_the_extremes() {
        let cfg = ClusterConfig::default();
        // Two maps with identical rates but disjoint faulty positions:
        // maximal position term, near-zero rate term.
        let a = FaultMap::from_coords(8, 8, &[(0, 0), (1, 1)]).expect("valid coords");
        let b = FaultMap::from_coords(8, 8, &[(6, 6), (7, 7)]).expect("valid coords");
        let d = fault_map_distance(&a, &b, &cfg).expect("same geometry");
        assert!(
            (d - 0.5).abs() < 1e-9,
            "expected pure position term, got {d}"
        );
        // Different resilience bands push the distance to the maximum.
        let heavy = map(0.4, 3);
        let light = map(0.02, 4);
        let far = fault_map_distance(&heavy, &light, &cfg).expect("same geometry");
        assert!(far > 0.9, "cross-band distance {far} should be near 1");
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let cfg = ClusterConfig::default();
        let small = FaultMap::generate(4, 4, 0.1, FaultModel::Random, 1).expect("valid rate");
        let err = fault_map_distance(&small, &map(0.1, 1), &cfg).expect_err("must reject");
        match err {
            SystolicError::BadGeometry { reason } => {
                assert!(reason.contains("4x4") && reason.contains("8x8"), "{reason}");
            }
            other => panic!("expected BadGeometry, got {other:?}"),
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            ClusterConfig {
                threshold: 1.5,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                threshold: f64::NAN,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                position_weight: -1.0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                position_weight: 0.0,
                rate_weight: 0.0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                band_width: 0.0,
                ..ClusterConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "config {cfg:?} must be rejected");
        }
        ClusterConfig::default()
            .validate()
            .expect("default is valid");
    }

    #[test]
    fn clustering_is_deterministic_and_partitions_the_input() {
        let cfg = ClusterConfig::default();
        let maps = population();
        let pairs: Vec<(usize, &FaultMap)> = maps.iter().enumerate().collect();
        let a = cluster_fault_maps(&pairs, &cfg).expect("valid config");
        let b = cluster_fault_maps(&pairs, &cfg).expect("valid config");
        assert_eq!(a, b, "clustering must be a pure function of its inputs");
        let mut seen: Vec<usize> = a
            .iter()
            .flat_map(|c| std::iter::once(c.representative).chain(c.members.iter().copied()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..maps.len()).collect::<Vec<_>>(), "exact partition");
        for c in &a {
            assert!(
                c.members
                    .iter()
                    .all(|&m| maps[m].faulty_count() <= maps[c.representative].faulty_count()),
                "representative is the highest-fault member"
            );
            assert!(!c.members.contains(&c.representative));
            assert!(c.members.windows(2).all(|w| w[0] < w[1]), "members ascend");
            assert_eq!(c.size(), 1 + c.members.len());
        }
    }

    #[test]
    fn identical_maps_cluster_together_and_threshold_zero_splits_everything() {
        let cfg = ClusterConfig::default();
        let shared = map(0.15, 42);
        let other = map(0.4, 43);
        let pairs = vec![(0usize, &shared), (1, &other), (2, &shared)];
        let clusters = cluster_fault_maps(&pairs, &cfg).expect("valid config");
        assert!(
            clusters
                .iter()
                .any(|c| c.representative == 0 && c.members == vec![2]),
            "identical maps must share a cluster: {clusters:?}"
        );
        let strict = ClusterConfig {
            threshold: 0.0,
            ..ClusterConfig::default()
        };
        let split =
            cluster_fault_maps(&[(0, &shared), (1, &other)], &strict).expect("valid config");
        assert_eq!(split.len(), 2, "threshold 0 admits only identical maps");
    }
}
