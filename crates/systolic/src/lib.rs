//! # reduce-systolic
//!
//! A weight-stationary systolic-array DNN accelerator model with permanent
//! faults — the hardware substrate of the Reduce (DATE 2023) reproduction.
//!
//! The crate models the FAP-equipped accelerator of Zhang et al. (VTS'18)
//! that the paper evaluates on:
//!
//! * [`FaultMap`] — per-PE permanent-fault maps with random (paper) and
//!   clustered (extension) generators;
//! * [`fap_mask`] — the Fault-Aware-Pruning semantics: the periodic
//!   structured-pruning mask a fault map induces on a layer's GEMM weights;
//! * [`fam_mapping`] — SalvageDNN-style saliency-driven fault-aware mapping
//!   (the stronger mitigation baseline);
//! * [`SystolicArray`] — a functional bypass-level emulator used as the
//!   oracle for the mask semantics;
//! * [`CostModel`] — cycle/energy accounting for inference and retraining;
//! * [`Chip`]/[`generate_fleet`] — seeded fleets of faulty chips;
//! * [`fault_map_distance`]/[`cluster_fault_maps`] — fault-map similarity
//!   and deterministic chip clustering for eFAT-style shared retraining.
//!
//! # Examples
//!
//! ```
//! use reduce_systolic::{fap_mask, FaultMap, FaultModel};
//!
//! # fn main() -> Result<(), reduce_systolic::SystolicError> {
//! // A 256x256 array with 2% of PEs faulty, as in the paper.
//! let map = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 7)?;
//! // The pruning mask it induces on a conv layer's (64, 576) GEMM weights.
//! let mask = fap_mask(64, 576, &map)?;
//! assert!(mask.sparsity() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
// Tests may unwrap/expect freely: a panic there *is* the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod array;
mod chip;
mod cluster;
mod dataflow;
mod error;
mod fault;
mod mapping;
mod perf;
mod quant;

pub use array::SystolicArray;
pub use chip::{chip_rate, generate_chip, generate_fleet, Chip, FleetConfig, RateDistribution};
pub use cluster::{cluster_fault_maps, fault_map_distance, Cluster, ClusterConfig};
pub use dataflow::{simulate_tiled_gemm, DataflowOutput, DataflowSim};
pub use error::{Result, SystolicError};
pub use fault::{FaultMap, FaultModel};
pub use mapping::{
    affected_weights, fam_mapping, fap_mask, pruned_fraction, saliency_loss, stuck_at_weights,
    FamMapping,
};
pub use perf::CostModel;
pub use quant::{quantized_gemm_nt, QuantParams, QuantizedTensor};
