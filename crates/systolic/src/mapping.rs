//! Weight-stationary mapping of DNN weights onto the PE array, and the
//! derivation of Fault-Aware-Pruning (FAP) masks from a chip's fault map.
//!
//! ## Mapping convention
//!
//! A layer's GEMM weight matrix `W: (out, in)` (convolutions are flattened
//! to `(out_channels, in_channels·kh·kw)` by im2col — exactly the shape
//! `reduce-nn` stores) executes on a `R × C` weight-stationary array in
//! tiles: array **rows carry the input (reduction) dimension**, array
//! **columns carry the output dimension** (each column accumulates one
//! output channel's dot product, TPU-style). Tile `(ti, tj)` maps weight
//! element `W[j][i]` with `i ∈ [ti·R, ti·R+R)`, `j ∈ [tj·C, tj·C+C)` onto
//! PE `(i mod R, j mod C)`.
//!
//! A faulty PE is bypassed (FAP), so every weight element mapped onto it is
//! forced to zero — a *periodic structured pruning* pattern: weight `(j, i)`
//! is pruned iff PE `(i mod R, j mod C)` is faulty.

use crate::error::{Result, SystolicError};
use crate::fault::FaultMap;
use reduce_tensor::Tensor;

/// Derives the FAP pruning mask for a `(out, in)` weight matrix.
///
/// The returned tensor has shape `(out, in)` with `0.0` marking weights
/// that land on faulty PEs and `1.0` elsewhere — directly installable via
/// `reduce_nn::Parameter::set_mask`.
///
/// # Errors
///
/// Returns [`SystolicError::BadGeometry`] for zero-sized weights.
///
/// # Examples
///
/// ```
/// use reduce_systolic::{fap_mask, FaultMap};
///
/// # fn main() -> Result<(), reduce_systolic::SystolicError> {
/// let map = FaultMap::from_coords(4, 4, &[(1, 2)])?;
/// let mask = fap_mask(8, 8, &map)?;
/// // Weight (out=2, in=1) maps to PE (1 mod 4, 2 mod 4) = the faulty one.
/// assert_eq!(mask.at(&[2, 1]).unwrap(), 0.0);
/// assert_eq!(mask.at(&[2, 2]).unwrap(), 1.0);
/// // The pattern repeats with the array period.
/// assert_eq!(mask.at(&[6, 5]).unwrap(), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fap_mask(out_dim: usize, in_dim: usize, map: &FaultMap) -> Result<Tensor> {
    if out_dim == 0 || in_dim == 0 {
        return Err(SystolicError::BadGeometry {
            reason: format!("weight matrix {out_dim}x{in_dim} has a zero dimension"),
        });
    }
    let (rows, cols) = (map.rows(), map.cols());
    let mut mask = Tensor::ones([out_dim, in_dim]);
    let md = mask.data_mut();
    for j in 0..out_dim {
        let col = j % cols;
        for i in 0..in_dim {
            if map.is_faulty(i % rows, col) {
                md[j * in_dim + i] = 0.0;
            }
        }
    }
    Ok(mask)
}

/// Number of weight elements of a `(out, in)` matrix that land on faulty
/// PEs — computed in closed form without materialising the mask.
pub fn affected_weights(out_dim: usize, in_dim: usize, map: &FaultMap) -> usize {
    let (rows, cols) = (map.rows(), map.cols());
    map.faulty_coords()
        .map(|(r, c)| {
            // i ≡ r (mod rows) within [0, in_dim): count.
            let ni = if r < in_dim {
                (in_dim - r).div_ceil(rows)
            } else {
                0
            };
            let nj = if c < out_dim {
                (out_dim - c).div_ceil(cols)
            } else {
                0
            };
            ni * nj
        })
        .sum()
}

/// Fraction of a `(out, in)` weight matrix pruned by FAP under `map`.
pub fn pruned_fraction(out_dim: usize, in_dim: usize, map: &FaultMap) -> f64 {
    if out_dim == 0 || in_dim == 0 {
        return 0.0;
    }
    affected_weights(out_dim, in_dim, map) as f64 / (out_dim * in_dim) as f64
}

/// A fault-aware mapping (FAM / SalvageDNN-style): a permutation of output
/// channels chosen so that the least-salient channels are served by the
/// array columns with the most faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FamMapping {
    /// `position_of[j]` = the array position assigned to output channel
    /// `j`; the channel uses array column `position_of[j] mod C`.
    pub position_of: Vec<usize>,
    /// The FAP mask under this permuted mapping, shape `(out, in)`.
    pub mask: Tensor,
}

impl FamMapping {
    /// Fraction of weights pruned under the permuted mapping.
    pub fn pruned_fraction(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        f64::from(self.mask.sparsity())
    }
}

/// Computes a saliency-driven output-channel permutation (FAM).
///
/// Following SalvageDNN's idea, the mapper evaluates, for every channel,
/// the exact L1 weight mass it would lose at each array *column class*
/// (positions are equivalent modulo the array width), then greedily assigns
/// channels to the remaining class with the smallest loss — processing
/// channels in descending order of how much their loss varies across
/// classes, so the channels with the most at stake choose first. If the
/// greedy assignment somehow loses more total saliency than the identity
/// mapping (possible in adversarial corner cases, since greedy is a
/// heuristic), the identity is returned instead — FAM therefore never does
/// worse than plain FAP.
///
/// # Errors
///
/// Returns [`SystolicError::BadGeometry`] if `weight` is not a matrix or
/// has a zero dimension.
pub fn fam_mapping(weight: &Tensor, map: &FaultMap) -> Result<FamMapping> {
    let (out_dim, in_dim) = weight.shape().as_matrix()?;
    if out_dim == 0 || in_dim == 0 {
        return Err(SystolicError::BadGeometry {
            reason: format!("weight matrix {out_dim}x{in_dim} has a zero dimension"),
        });
    }
    let (rows, cols) = (map.rows(), map.cols());
    let classes = cols.min(out_dim);
    // Faulty input indices per column class (i ranges over the layer's
    // input dimension; the faulty rows repeat with the array period).
    let faulty_inputs: Vec<Vec<usize>> = (0..classes)
        .map(|c| {
            (0..in_dim)
                .filter(|&i| map.is_faulty(i % rows, c % cols))
                .collect()
        })
        .collect();
    // Exact pruning loss of channel j at column class c.
    let mut cost = vec![vec![0.0f32; classes]; out_dim];
    for (j, row_cost) in cost.iter_mut().enumerate() {
        let row = weight.row_slice(j)?;
        for (c, faulty) in faulty_inputs.iter().enumerate() {
            row_cost[c] = faulty.iter().map(|&i| row[i].abs()).sum();
        }
    }
    // Capacity of each class: how many positions p in [0, out_dim) map to
    // it. Note p % cols < classes always: when out_dim <= cols, p % cols
    // == p < out_dim == classes; otherwise p % cols < cols == classes.
    let mut capacity = vec![0usize; classes];
    let mut class_positions: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for p in 0..out_dim {
        let class = p % cols;
        capacity[class] += 1;
        class_positions[class].push(p);
    }
    // Channels with the largest cost spread choose first.
    let mut order: Vec<usize> = (0..out_dim).collect();
    let spread = |j: usize| -> f32 {
        let mx = cost[j].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mn = cost[j].iter().copied().fold(f32::INFINITY, f32::min);
        mx - mn
    };
    order.sort_by(|&a, &b| {
        spread(b)
            .partial_cmp(&spread(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut position_of = vec![usize::MAX; out_dim];
    let mut remaining = capacity.clone();
    for &j in &order {
        let class = (0..classes)
            .filter(|&c| remaining[c] > 0)
            .min_by(|&a, &b| {
                cost[j][a]
                    .partial_cmp(&cost[j][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or_else(|| SystolicError::Internal {
                invariant: "class capacities sum to out_dim, so one always has room".to_string(),
            })?;
        remaining[class] -= 1;
        position_of[j] = class_positions[class][remaining[class]];
    }
    // Compare against the identity mapping and keep the better one.
    let total = |assign: &dyn Fn(usize) -> usize| -> f32 {
        (0..out_dim).map(|j| cost[j][assign(j) % cols]).sum()
    };
    let greedy_total = total(&|j| position_of[j]);
    let identity_total = total(&|j| j);
    if identity_total < greedy_total {
        position_of = (0..out_dim).collect();
    }
    // Mask under the chosen mapping: channel j sees column position_of[j].
    let mut mask = Tensor::ones([out_dim, in_dim]);
    let md = mask.data_mut();
    for j in 0..out_dim {
        let col = position_of[j] % cols;
        for i in 0..in_dim {
            if map.is_faulty(i % rows, col) {
                md[j * in_dim + i] = 0.0;
            }
        }
    }
    Ok(FamMapping { position_of, mask })
}

/// Corrupts a `(out, in)` weight matrix the way **unprotected** execution
/// would see it: every weight mapped onto a faulty PE reads as
/// `stuck_value` instead of being bypassed to zero.
///
/// This models the motivating observation of Zhang et al. (VTS'18) that
/// the paper builds on: without FAP, a stuck weight/MAC register
/// contributes an arbitrary (often saturated) value, and even a small
/// fraction of such faults destroys accuracy — which is why the
/// FAP-bypass (+ retraining) mitigation exists. Compare with
/// [`fap_mask`], which zeroes the same positions.
///
/// # Errors
///
/// Returns [`SystolicError::BadGeometry`] if `weight` is not a matrix.
pub fn stuck_at_weights(weight: &Tensor, map: &FaultMap, stuck_value: f32) -> Result<Tensor> {
    let (out_dim, in_dim) = weight.shape().as_matrix()?;
    let (rows, cols) = (map.rows(), map.cols());
    let mut corrupted = weight.clone();
    let cd = corrupted.data_mut();
    for j in 0..out_dim {
        let col = j % cols;
        for i in 0..in_dim {
            if map.is_faulty(i % rows, col) {
                cd[j * in_dim + i] = stuck_value;
            }
        }
    }
    Ok(corrupted)
}

/// Saliency-weighted pruning loss of a mask: the L1 mass of the weights it
/// zeroes. FAM minimises this relative to plain FAP.
///
/// # Errors
///
/// Returns a shape error if mask and weight disagree.
pub fn saliency_loss(weight: &Tensor, mask: &Tensor) -> Result<f32> {
    if weight.dims() != mask.dims() {
        return Err(SystolicError::Tensor(
            reduce_tensor::TensorError::ShapeMismatch {
                op: "saliency_loss",
                lhs: weight.dims().to_vec(),
                rhs: mask.dims().to_vec(),
            },
        ));
    }
    Ok(weight
        .data()
        .iter()
        .zip(mask.data())
        .filter(|(_, &m)| m == 0.0) // xtask:allow(float-eq): masks hold exact 0.0/1.0 sentinels
        .map(|(&w, _)| w.abs())
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;

    #[test]
    fn fault_free_mask_is_all_ones() {
        let map = FaultMap::fault_free(8, 8).expect("nonzero");
        let mask = fap_mask(16, 16, &map).expect("nonzero");
        assert_eq!(mask.sum(), 256.0);
        assert_eq!(affected_weights(16, 16, &map), 0);
    }

    #[test]
    fn mask_is_periodic_with_array_dims() {
        let map = FaultMap::from_coords(4, 4, &[(1, 2)]).expect("in range");
        let mask = fap_mask(8, 12, &map).expect("nonzero");
        for j in 0..8 {
            for i in 0..12 {
                let expect_pruned = i % 4 == 1 && j % 4 == 2;
                assert_eq!(
                    mask.at(&[j, i]).expect("in range") == 0.0,
                    expect_pruned,
                    "at ({j}, {i})"
                );
            }
        }
    }

    #[test]
    fn affected_weights_matches_mask() {
        let map = FaultMap::generate(8, 8, 0.15, FaultModel::Random, 5).expect("valid");
        for (out, inp) in [(8, 8), (16, 8), (13, 21), (3, 5), (64, 64)] {
            let mask = fap_mask(out, inp, &map).expect("nonzero");
            let from_mask = mask.data().iter().filter(|&&v| v == 0.0).count();
            assert_eq!(
                affected_weights(out, inp, &map),
                from_mask,
                "closed form disagrees at {out}x{inp}"
            );
        }
    }

    #[test]
    fn pruned_fraction_approaches_fault_rate_for_large_layers() {
        let map = FaultMap::generate(16, 16, 0.1, FaultModel::Random, 9).expect("valid");
        // A layer that covers the array exactly k times sees exactly the
        // chip fault rate.
        let frac = pruned_fraction(64, 64, &map);
        assert!(
            (frac - map.fault_rate()).abs() < 1e-9,
            "{frac} vs {}",
            map.fault_rate()
        );
    }

    #[test]
    fn small_layer_sees_only_its_corner() {
        // Fault outside the used region has no effect.
        let map = FaultMap::from_coords(8, 8, &[(7, 7)]).expect("in range");
        assert_eq!(affected_weights(4, 4, &map), 0);
        // Fault inside does.
        let map = FaultMap::from_coords(8, 8, &[(1, 1)]).expect("in range");
        assert_eq!(affected_weights(4, 4, &map), 1);
    }

    #[test]
    fn zero_dims_rejected() {
        let map = FaultMap::fault_free(4, 4).expect("nonzero");
        assert!(fap_mask(0, 4, &map).is_err());
        assert_eq!(pruned_fraction(0, 4, &map), 0.0);
    }

    #[test]
    fn fam_reduces_saliency_loss() {
        // One very bad column; salient weights concentrated on the channel
        // mapped to it by default.
        let map = FaultMap::from_coords(
            4,
            4,
            &[(0, 2), (1, 2), (2, 2), (3, 2)], // column 2 fully dead
        )
        .expect("in range");
        // Channel 2 (→ column 2) is the most salient one.
        let mut w = Tensor::ones([4, 4]);
        for i in 0..4 {
            w.data_mut()[2 * 4 + i] = 10.0;
        }
        let plain = fap_mask(4, 4, &map).expect("nonzero");
        let plain_loss = saliency_loss(&w, &plain).expect("same shape");
        let fam = fam_mapping(&w, &map).expect("matrix");
        let fam_loss = saliency_loss(&w, &fam.mask).expect("same shape");
        assert!(
            fam_loss < plain_loss,
            "FAM loss {fam_loss} not better than FAP loss {plain_loss}"
        );
        // The dead column is assigned to the least salient channel, not 2.
        assert_ne!(fam.position_of[2] % 4, 2);
    }

    #[test]
    fn fam_is_a_permutation() {
        let map = FaultMap::generate(8, 8, 0.2, FaultModel::Random, 3).expect("valid");
        let w = Tensor::rand_uniform([12, 8], -1.0, 1.0, 4);
        let fam = fam_mapping(&w, &map).expect("matrix");
        let mut seen = [false; 12];
        for &p in &fam.position_of {
            assert!(p < 12 && !seen[p], "not a permutation");
            seen[p] = true;
        }
    }

    #[test]
    fn fam_prunes_same_or_less_saliency_randomised() {
        for seed in 0..5 {
            let map = FaultMap::generate(8, 8, 0.15, FaultModel::Random, seed).expect("valid");
            let w = Tensor::rand_uniform([16, 16], -1.0, 1.0, seed + 100);
            let plain_loss =
                saliency_loss(&w, &fap_mask(16, 16, &map).expect("nonzero")).expect("same shape");
            let fam_loss = saliency_loss(&w, &fam_mapping(&w, &map).expect("matrix").mask)
                .expect("same shape");
            assert!(
                fam_loss <= plain_loss + 1e-4,
                "seed {seed}: fam {fam_loss} > fap {plain_loss}"
            );
        }
    }

    #[test]
    fn saliency_loss_validates_shapes() {
        assert!(saliency_loss(&Tensor::ones([2, 2]), &Tensor::ones([2, 3])).is_err());
    }

    #[test]
    fn stuck_at_writes_exactly_the_masked_positions() {
        let map = FaultMap::generate(4, 4, 0.3, FaultModel::Random, 8).expect("valid");
        let w = Tensor::rand_uniform([8, 8], -0.5, 0.5, 9);
        let corrupted = stuck_at_weights(&w, &map, 7.0).expect("matrix");
        let mask = fap_mask(8, 8, &map).expect("nonzero");
        for ((orig, bad), m) in w.data().iter().zip(corrupted.data()).zip(mask.data()) {
            if *m == 0.0 {
                assert_eq!(*bad, 7.0);
            } else {
                assert_eq!(bad, orig);
            }
        }
        assert!(stuck_at_weights(&Tensor::ones([3]), &map, 1.0).is_err());
    }

    #[test]
    fn stuck_at_with_zero_equals_fap_masking() {
        let map = FaultMap::generate(4, 4, 0.25, FaultModel::Random, 10).expect("valid");
        let w = Tensor::rand_uniform([6, 6], -1.0, 1.0, 11);
        let stuck_zero = stuck_at_weights(&w, &map, 0.0).expect("matrix");
        let masked = (&w * &fap_mask(6, 6, &map).expect("nonzero")).expect("same shape");
        assert_eq!(stuck_zero, masked);
    }
}
