//! Image augmentation for NCHW tensors.

use crate::dataset::{DataError, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reduce_tensor::Tensor;

/// Seeded augmentation pipeline for NCHW image batches: random horizontal
/// flips and random circular shifts, applied per image.
///
/// # Examples
///
/// ```
/// use reduce_data::Augmenter;
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_data::DataError> {
/// let mut aug = Augmenter::new(0.5, 2, 7);
/// let batch = Tensor::rand_uniform([4, 3, 8, 8], -1.0, 1.0, 0);
/// let out = aug.apply(&batch)?;
/// assert_eq!(out.dims(), batch.dims());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Augmenter {
    flip_probability: f32,
    max_shift: usize,
    rng: SmallRng,
}

impl Augmenter {
    /// Creates an augmenter.
    ///
    /// `flip_probability` is clamped to `[0, 1]`; `max_shift` is the
    /// maximum circular translation in pixels per axis.
    pub fn new(flip_probability: f32, max_shift: usize, seed: u64) -> Self {
        Augmenter {
            flip_probability: flip_probability.clamp(0.0, 1.0),
            max_shift,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Applies fresh random flips/shifts to every image in the batch.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for non-rank-4 input.
    pub fn apply(&mut self, batch: &Tensor) -> Result<Tensor> {
        let d = batch.dims();
        if d.len() != 4 {
            return Err(DataError::InvalidConfig {
                what: format!("augmenter expects NCHW input, got {:?}", d),
            });
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let mut out = batch.clone();
        let shift = self.max_shift as isize;
        for img in 0..n {
            let flip = self.rng.gen::<f32>() < self.flip_probability;
            let (dx, dy) = if shift > 0 {
                (
                    self.rng.gen_range(-shift..=shift),
                    self.rng.gen_range(-shift..=shift),
                )
            } else {
                (0, 0)
            };
            if !flip && dx == 0 && dy == 0 {
                continue;
            }
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let src = batch.data()[base..base + h * w].to_vec();
                let dst = &mut out.data_mut()[base..base + h * w];
                for y in 0..h {
                    for x in 0..w {
                        let sx = if flip { w - 1 - x } else { x } as isize;
                        let px = (sx + dx).rem_euclid(w as isize) as usize;
                        let py = (y as isize + dy).rem_euclid(h as isize) as usize;
                        dst[y * w + x] = src[py * w + px];
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape_and_pixel_multiset() {
        let mut aug = Augmenter::new(1.0, 2, 1);
        let x = Tensor::rand_uniform([2, 1, 6, 6], -1.0, 1.0, 2);
        let y = aug.apply(&x).expect("rank 4");
        assert_eq!(y.dims(), x.dims());
        // Circular shift + flip permutes pixels within each channel.
        let mut a: Vec<_> = x.data().to_vec();
        let mut b: Vec<_> = y.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_when_disabled() {
        let mut aug = Augmenter::new(0.0, 0, 1);
        let x = Tensor::rand_uniform([3, 2, 4, 4], -1.0, 1.0, 3);
        assert_eq!(aug.apply(&x).expect("rank 4"), x);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Tensor::rand_uniform([4, 1, 5, 5], -1.0, 1.0, 4);
        let a = Augmenter::new(0.5, 2, 9).apply(&x).expect("rank 4");
        let b = Augmenter::new(0.5, 2, 9).apply(&x).expect("rank 4");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_non_nchw() {
        assert!(Augmenter::new(0.5, 1, 0)
            .apply(&Tensor::zeros([4, 4]))
            .is_err());
    }

    #[test]
    fn probability_is_clamped() {
        let aug = Augmenter::new(7.0, 0, 0);
        assert_eq!(aug.flip_probability, 1.0);
    }
}
