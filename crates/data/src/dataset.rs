//! Labelled datasets and split utilities.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use reduce_tensor::{Tensor, TensorError};
use std::error::Error;
use std::fmt;

/// Error produced by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// Labels/features/classes are mutually inconsistent.
    Inconsistent {
        /// What was inconsistent.
        reason: String,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// What configuration was invalid.
        what: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::Inconsistent { reason } => write!(f, "inconsistent dataset: {reason}"),
            DataError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;

/// A labelled classification dataset.
///
/// Features are stored with samples along dimension 0 (rank 2 for tabular
/// data, rank 4 NCHW for images); labels are class indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating feature/label consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if sample and label counts
    /// differ, any label is out of range, or `classes` is zero.
    pub fn new(features: Tensor, labels: Vec<usize>, classes: usize) -> Result<Self> {
        let n = features.dims().first().copied().unwrap_or(0);
        if labels.len() != n {
            return Err(DataError::Inconsistent {
                reason: format!("{n} samples but {} labels", labels.len()),
            });
        }
        if classes == 0 {
            return Err(DataError::Inconsistent {
                reason: "zero classes".to_string(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DataError::Inconsistent {
                reason: format!("label {bad} >= classes {classes}"),
            });
        }
        Ok(Dataset {
            features,
            labels,
            classes,
        })
    }

    /// The feature tensor (samples along dim 0).
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The class labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Copies the samples at `idx` into a new dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if any index is out of range.
    pub fn subset(&self, idx: &[usize]) -> Result<Dataset> {
        let n = self.len();
        let dims = self.features.dims();
        let stride: usize = dims[1..].iter().product();
        let mut data = Vec::with_capacity(idx.len() * stride);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            if i >= n {
                return Err(DataError::Inconsistent {
                    reason: format!("subset index {i} out of range ({n} samples)"),
                });
            }
            data.extend_from_slice(&self.features.data()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        let mut out_dims = dims.to_vec();
        out_dims[0] = idx.len();
        Ok(Dataset {
            features: Tensor::from_vec(data, out_dims)?,
            labels,
            classes: self.classes,
        })
    }

    /// Splits into `(train, test)` with `train_fraction` of the samples in
    /// the first part, after a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f32, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(DataError::InvalidConfig {
                what: format!("train_fraction {train_fraction} not in (0, 1)"),
            });
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed));
        let cut = ((self.len() as f32) * train_fraction).round() as usize;
        let cut = cut.min(self.len());
        Ok((self.subset(&order[..cut])?, self.subset(&order[cut..])?))
    }

    /// Flips a fraction of labels to a different uniformly random class —
    /// the label-noise knob that keeps the synthetic tasks from saturating
    /// at 100 % and makes an accuracy constraint meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] unless `0 ≤ fraction ≤ 1`, or
    /// if the dataset has fewer than two classes.
    pub fn with_label_noise(mut self, fraction: f32, seed: u64) -> Result<Dataset> {
        use rand::Rng;
        if !(0.0..=1.0).contains(&fraction) {
            return Err(DataError::InvalidConfig {
                what: format!("label-noise fraction {fraction} not in [0, 1]"),
            });
        }
        if fraction > 0.0 && self.classes < 2 {
            return Err(DataError::InvalidConfig {
                what: "label noise requires at least two classes".to_string(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        for l in &mut self.labels {
            if rng.gen::<f32>() < fraction {
                let mut new = rng.gen_range(0..self.classes - 1);
                if new >= *l {
                    new += 1;
                }
                *l = new;
            }
        }
        Ok(self)
    }

    /// Standardises features to zero mean / unit variance computed over the
    /// whole dataset, returning the transform so a test set can reuse it.
    pub fn standardize(mut self) -> (Dataset, Standardization) {
        let mean = self.features.mean();
        let var = self.features.map(|v| (v - mean) * (v - mean)).mean();
        let std = var.sqrt().max(1e-8);
        self.features.map_in_place(|v| (v - mean) / std);
        (self, Standardization { mean, std })
    }
}

/// A fitted standardisation transform (mean/std over a training set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardization {
    /// Mean subtracted from every element.
    pub mean: f32,
    /// Standard deviation divided out.
    pub std: f32,
}

impl Standardization {
    /// Applies the transform to another dataset (e.g. the test split).
    pub fn apply(&self, mut dataset: Dataset) -> Dataset {
        let (m, s) = (self.mean, self.std);
        dataset.features.map_in_place(|v| (v - m) / s);
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_fn([n, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(features, labels, 2).expect("consistent")
    }

    #[test]
    fn new_validates() {
        assert!(Dataset::new(Tensor::zeros([3, 2]), vec![0, 1], 2).is_err());
        assert!(Dataset::new(Tensor::zeros([2, 2]), vec![0, 2], 2).is_err());
        assert!(Dataset::new(Tensor::zeros([2, 2]), vec![0, 1], 0).is_err());
    }

    #[test]
    fn class_counts() {
        let d = toy(10);
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy(5);
        let s = d.subset(&[4, 0]).expect("indices valid");
        assert_eq!(s.len(), 2);
        assert_eq!(s.features().data(), &[8.0, 9.0, 0.0, 1.0]);
        assert_eq!(s.labels(), &[0, 0]);
        assert!(d.subset(&[5]).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(100);
        let (tr, te) = d.split(0.8, 1).expect("valid fraction");
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        assert!(d.split(0.0, 1).is_err());
        assert!(d.split(1.5, 1).is_err());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let (a, _) = d.split(0.5, 7).expect("valid fraction");
        let (b, _) = d.split(0.5, 7).expect("valid fraction");
        assert_eq!(a, b);
        let (c, _) = d.split(0.5, 8).expect("valid fraction");
        assert_ne!(a, c);
    }

    #[test]
    fn label_noise_flips_roughly_fraction() {
        let d = toy(10_000);
        let orig = d.labels().to_vec();
        let noisy = d.with_label_noise(0.1, 3).expect("valid fraction");
        let flipped = orig
            .iter()
            .zip(noisy.labels())
            .filter(|(a, b)| a != b)
            .count() as f32
            / 10_000.0;
        assert!((flipped - 0.1).abs() < 0.02, "flipped {flipped}");
        // Flipped labels are always different classes and stay in range.
        assert!(noisy.labels().iter().all(|&l| l < 2));
    }

    #[test]
    fn label_noise_validation() {
        assert!(toy(4).with_label_noise(1.5, 0).is_err());
        let one_class = Dataset::new(Tensor::zeros([2, 1]), vec![0, 0], 1).expect("consistent");
        assert!(one_class.clone().with_label_noise(0.5, 0).is_err());
        assert!(one_class.with_label_noise(0.0, 0).is_ok());
    }

    #[test]
    fn standardize_whitens() {
        let d = Dataset::new(Tensor::rand_normal([500, 3], 5.0, 2.0, 1), vec![0; 500], 1)
            .expect("consistent");
        let (std_d, transform) = d.standardize();
        assert!(std_d.features().mean().abs() < 1e-4);
        let var = std_d.features().map(|v| v * v).mean();
        assert!((var - 1.0).abs() < 1e-3);
        assert!((transform.mean - 5.0).abs() < 0.2);
        // Apply to another set drawn from the same distribution.
        let other = Dataset::new(Tensor::rand_normal([500, 3], 5.0, 2.0, 2), vec![0; 500], 1)
            .expect("consistent");
        let other = transform.apply(other);
        assert!(other.features().mean().abs() < 0.1);
    }
}
