//! Toy tabular datasets for fast tests and examples.

use crate::dataset::{DataError, Dataset, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reduce_tensor::Tensor;

/// Gaussian blobs: `classes` isotropic clusters in `dim` dimensions.
///
/// Cluster centres are placed on a seeded random sphere of radius
/// `separation`; points are drawn `N(centre, std²)`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero classes/dim/samples.
///
/// # Examples
///
/// ```
/// use reduce_data::blobs;
///
/// # fn main() -> Result<(), reduce_data::DataError> {
/// let d = blobs(100, 2, 3, 3.0, 0.5, 7)?;
/// assert_eq!(d.len(), 100);
/// assert_eq!(d.classes(), 3);
/// # Ok(())
/// # }
/// ```
pub fn blobs(
    samples: usize,
    dim: usize,
    classes: usize,
    separation: f32,
    std: f32,
    seed: u64,
) -> Result<Dataset> {
    if samples == 0 || dim == 0 || classes == 0 {
        return Err(DataError::InvalidConfig {
            what: format!("blobs({samples}, {dim}, {classes}) has a zero argument"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random unit directions scaled by separation.
    let mut centres = Vec::with_capacity(classes);
    for _ in 0..classes {
        let dir = Tensor::rand_normal_with([dim], 0.0, 1.0, &mut rng);
        let norm = dir.norm_sq().sqrt().max(1e-6);
        centres.push(dir.map(|v| v / norm * separation));
    }
    let mut data = Vec::with_capacity(samples * dim);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % classes;
        let noise = Tensor::rand_normal_with([dim], 0.0, std, &mut rng);
        for j in 0..dim {
            data.push(centres[class].data()[j] + noise.data()[j]);
        }
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [samples, dim])?, labels, classes)
}

/// The classic two-moons binary dataset in 2-D.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero samples.
pub fn two_moons(samples: usize, noise: f32, seed: u64) -> Result<Dataset> {
    if samples == 0 {
        return Err(DataError::InvalidConfig {
            what: "zero samples".to_string(),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(samples * 2);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % 2;
        let t: f32 = rng.gen_range(0.0..std::f32::consts::PI);
        let (mut x, mut y) = if class == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += rng.gen_range(-noise..=noise);
        y += rng.gen_range(-noise..=noise);
        data.push(x);
        data.push(y);
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [samples, 2])?, labels, 2)
}

/// Interleaved spirals: `classes` arms winding `turns` revolutions.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero samples/classes.
pub fn spirals(
    samples: usize,
    classes: usize,
    turns: f32,
    noise: f32,
    seed: u64,
) -> Result<Dataset> {
    if samples == 0 || classes == 0 {
        return Err(DataError::InvalidConfig {
            what: format!("spirals({samples}, {classes}) has a zero argument"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(samples * 2);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % classes;
        let t: f32 = rng.gen_range(0.1f32..1.0);
        let angle = t * turns * 2.0 * std::f32::consts::PI
            + class as f32 * 2.0 * std::f32::consts::PI / classes as f32;
        let r = t;
        data.push(r * angle.cos() + rng.gen_range(-noise..=noise));
        data.push(r * angle.sin() + rng.gen_range(-noise..=noise));
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [samples, 2])?, labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_balanced_and_separated() {
        let d = blobs(300, 4, 3, 5.0, 0.3, 1).expect("valid");
        assert_eq!(d.class_counts(), vec![100; 3]);
        // With separation >> std, per-class means are far apart.
        let dim = 4;
        let mut means = vec![vec![0.0f32; dim]; 3];
        for (i, &l) in d.labels().iter().enumerate() {
            let row = &d.features().data()[i * dim..(i + 1) * dim];
            for (m, &v) in means[l].iter_mut().zip(row) {
                *m += v / 100.0;
            }
        }
        let dist01: f32 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist01 > 2.0, "clusters overlap: {dist01}");
    }

    #[test]
    fn blobs_deterministic() {
        let a = blobs(50, 2, 2, 3.0, 0.5, 9).expect("valid");
        let b = blobs(50, 2, 2, 3.0, 0.5, 9).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn moons_shapes() {
        let d = two_moons(100, 0.05, 2).expect("valid");
        assert_eq!(d.features().dims(), &[100, 2]);
        assert_eq!(d.classes(), 2);
    }

    #[test]
    fn spirals_shapes() {
        let d = spirals(90, 3, 1.5, 0.02, 3).expect("valid");
        assert_eq!(d.class_counts(), vec![30; 3]);
    }

    #[test]
    fn zero_args_rejected() {
        assert!(blobs(0, 2, 2, 1.0, 0.1, 0).is_err());
        assert!(blobs(10, 0, 2, 1.0, 0.1, 0).is_err());
        assert!(two_moons(0, 0.1, 0).is_err());
        assert!(spirals(10, 0, 1.0, 0.1, 0).is_err());
    }
}
