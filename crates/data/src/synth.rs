//! Procedurally generated CIFAR-like image classification data.
//!
//! Real CIFAR-10 is not available offline, so the reproduction trains on a
//! seeded synthetic substitute: each class is defined by a smooth
//! "texture prototype" (a sum of class-specific sinusoidal gratings plus a
//! class-specific Gaussian blob per channel), and samples are jittered,
//! shifted, noisy renderings of their class prototype. The task difficulty
//! is controlled by pixel noise, geometric jitter and label noise, tuned so
//! that a small CNN saturates in the low-to-mid 90s — which makes the
//! paper's 91 % accuracy constraint meaningful.

use crate::dataset::{DataError, Dataset, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reduce_tensor::Tensor;

/// Configuration of the synthetic image task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthImageConfig {
    /// Number of classes (CIFAR-10 uses 10).
    pub classes: usize,
    /// Square image resolution.
    pub hw: usize,
    /// Channels (3 for RGB-like).
    pub channels: usize,
    /// Total number of samples (classes are balanced round-robin).
    pub samples: usize,
    /// Std-dev of i.i.d. Gaussian pixel noise.
    pub pixel_noise: f32,
    /// Per-sample amplitude jitter: brightness drawn from `[1-j, 1+j]`.
    pub amplitude_jitter: f32,
    /// Maximum circular shift in pixels (both axes).
    pub max_shift: usize,
    /// Fraction of labels flipped to a different class.
    pub label_noise: f32,
    /// Master seed: prototypes and samples both derive from it.
    pub seed: u64,
}

impl SynthImageConfig {
    /// The configuration used by the headline experiments: a 10-class,
    /// 3×16×16 task a nano-VGG saturates on in the low-to-mid 90s.
    pub fn cifar_like(samples: usize, seed: u64) -> Self {
        SynthImageConfig {
            classes: 10,
            hw: 16,
            channels: 3,
            samples,
            pixel_noise: 0.35,
            amplitude_jitter: 0.25,
            max_shift: 2,
            label_noise: 0.02,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.classes == 0
            || self.hw == 0
            || self.channels == 0
            || self.samples == 0
            || self.pixel_noise < 0.0
            || !(0.0..=1.0).contains(&self.label_noise)
            || !(0.0..1.0).contains(&self.amplitude_jitter)
        {
            return Err(DataError::InvalidConfig {
                what: format!("synthetic image config rejected: {self:?}"),
            });
        }
        Ok(())
    }
}

/// The class prototypes underlying a synthetic task.
///
/// Exposed so experiments can generate arbitrarily many *fresh* samples of
/// the same task (e.g. an i.i.d. test set) without regenerating prototypes.
#[derive(Debug, Clone)]
pub struct SynthTask {
    config: SynthImageConfig,
    /// `classes` prototype images, each `channels·hw·hw` long.
    prototypes: Vec<Vec<f32>>,
}

impl SynthTask {
    /// Derives class prototypes from `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for degenerate configurations.
    pub fn new(config: SynthImageConfig) -> Result<Self> {
        config.validate()?;
        let hw = config.hw;
        let mut prototypes = Vec::with_capacity(config.classes);
        for class in 0..config.classes {
            let mut rng = SmallRng::seed_from_u64(
                config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(class as u64 + 1)),
            );
            let mut proto = vec![0.0f32; config.channels * hw * hw];
            for ch in 0..config.channels {
                // Three gratings with class-specific geometry.
                let gratings: Vec<(f32, f32, f32, f32)> = (0..3)
                    .map(|_| {
                        (
                            rng.gen_range(0.5..2.5),                        // cycles across image
                            rng.gen_range(0.0..std::f32::consts::PI),       // orientation
                            rng.gen_range(0.0..2.0 * std::f32::consts::PI), // phase
                            rng.gen_range(0.4..1.0),                        // weight
                        )
                    })
                    .collect();
                // One blob.
                let (bx, by): (f32, f32) = (rng.gen_range(0.2..0.8), rng.gen_range(0.2..0.8));
                let bsig: f32 = rng.gen_range(0.1..0.25);
                let bamp: f32 = rng.gen_range(0.5..1.2);
                for y in 0..hw {
                    for x in 0..hw {
                        let (fx, fy) = (x as f32 / hw as f32, y as f32 / hw as f32);
                        let mut v = 0.0f32;
                        for &(freq, theta, phase, w) in &gratings {
                            let proj = fx * theta.cos() + fy * theta.sin();
                            v += w * (2.0 * std::f32::consts::PI * freq * proj + phase).sin();
                        }
                        let d2 = (fx - bx) * (fx - bx) + (fy - by) * (fy - by);
                        v += bamp * (-d2 / (2.0 * bsig * bsig)).exp();
                        proto[(ch * hw + y) * hw + x] = v;
                    }
                }
            }
            // Normalise prototype to zero mean, unit max-abs.
            let mean = proto.iter().sum::<f32>() / proto.len() as f32;
            for v in &mut proto {
                *v -= mean;
            }
            let max_abs = proto
                .iter()
                .map(|v| v.abs())
                .fold(0.0f32, f32::max)
                .max(1e-6);
            for v in &mut proto {
                *v /= max_abs;
            }
            prototypes.push(proto);
        }
        Ok(SynthTask { config, prototypes })
    }

    /// The task configuration.
    pub fn config(&self) -> &SynthImageConfig {
        &self.config
    }

    /// The prototype image of `class` (row-major CHW).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for an out-of-range class.
    pub fn prototype(&self, class: usize) -> Result<&[f32]> {
        self.prototypes
            .get(class)
            .map(Vec::as_slice)
            .ok_or_else(|| DataError::InvalidConfig {
                what: format!("class {class} out of range"),
            })
    }

    /// Renders `samples` fresh labelled images using `sample_seed`.
    ///
    /// Classes are balanced round-robin, then label noise (if configured)
    /// flips a fraction of labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `samples` is zero.
    pub fn sample(&self, samples: usize, sample_seed: u64) -> Result<Dataset> {
        if samples == 0 {
            return Err(DataError::InvalidConfig {
                what: "zero samples requested".to_string(),
            });
        }
        let c = &self.config;
        let (hw, chans) = (c.hw, c.channels);
        let img_len = chans * hw * hw;
        let mut rng = SmallRng::seed_from_u64(sample_seed ^ c.seed.rotate_left(17));
        let mut data = Vec::with_capacity(samples * img_len);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % c.classes;
            labels.push(class);
            let proto = &self.prototypes[class];
            let amp = 1.0 + rng.gen_range(-c.amplitude_jitter..=c.amplitude_jitter);
            let shift = c.max_shift as isize;
            let (dx, dy) = if shift > 0 {
                (rng.gen_range(-shift..=shift), rng.gen_range(-shift..=shift))
            } else {
                (0, 0)
            };
            let flip = rng.gen::<bool>();
            for ch in 0..chans {
                for y in 0..hw {
                    for x in 0..hw {
                        let sx = if flip { hw - 1 - x } else { x } as isize;
                        let px = (sx + dx).rem_euclid(hw as isize) as usize;
                        let py = (y as isize + dy).rem_euclid(hw as isize) as usize;
                        let base = proto[(ch * hw + py) * hw + px];
                        let noise: f32 = if c.pixel_noise > 0.0 {
                            // Box–Muller from two uniforms.
                            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                            let u2: f32 = rng.gen_range(0.0f32..1.0);
                            c.pixel_noise
                                * (-2.0 * u1.ln()).sqrt()
                                * (2.0 * std::f32::consts::PI * u2).cos()
                        } else {
                            0.0
                        };
                        data.push(amp * base + noise);
                    }
                }
            }
        }
        let features = Tensor::from_vec(data, [samples, chans, hw, hw])?;
        let dataset = Dataset::new(features, labels, c.classes)?;
        if c.label_noise > 0.0 {
            dataset.with_label_noise(c.label_noise, sample_seed.wrapping_add(1))
        } else {
            Ok(dataset)
        }
    }
}

/// One-call helper: builds the task and renders its training set.
///
/// # Errors
///
/// Propagates configuration errors from [`SynthTask::new`].
pub fn synthetic_cifar(config: SynthImageConfig) -> Result<Dataset> {
    SynthTask::new(config)?.sample(config.samples, config.seed.wrapping_add(0xD1FF))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthImageConfig {
        SynthImageConfig {
            classes: 4,
            hw: 8,
            channels: 2,
            samples: 80,
            pixel_noise: 0.2,
            amplitude_jitter: 0.2,
            max_shift: 1,
            label_noise: 0.0,
            seed: 42,
        }
    }

    #[test]
    fn shapes_and_balance() {
        let d = synthetic_cifar(small_config()).expect("valid config");
        assert_eq!(d.features().dims(), &[80, 2, 8, 8]);
        assert_eq!(d.class_counts(), vec![20; 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_cifar(small_config()).expect("valid config");
        let b = synthetic_cifar(small_config()).expect("valid config");
        assert_eq!(a, b);
        let mut cfg = small_config();
        cfg.seed = 43;
        let c = synthetic_cifar(cfg).expect("valid config");
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_samples_differ_but_share_prototypes() {
        let task = SynthTask::new(small_config()).expect("valid config");
        let a = task.sample(40, 1).expect("nonzero");
        let b = task.sample(40, 2).expect("nonzero");
        assert_ne!(a.features(), b.features());
        // Same underlying prototypes: nearest-centroid transfer works below.
        assert_eq!(a.class_counts(), b.class_counts());
    }

    #[test]
    fn classes_are_separable_by_nearest_centroid() {
        let task = SynthTask::new(small_config()).expect("valid config");
        let train = task.sample(200, 10).expect("nonzero");
        let test = task.sample(100, 11).expect("nonzero");
        let img_len = 2 * 8 * 8;
        // Class centroids from train.
        let mut centroids = vec![vec![0.0f32; img_len]; 4];
        let counts = train.class_counts();
        for (i, &l) in train.labels().iter().enumerate() {
            let img = &train.features().data()[i * img_len..(i + 1) * img_len];
            for (c, &v) in centroids[l].iter_mut().zip(img) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f32;
            }
        }
        // Classify test by nearest centroid.
        let mut correct = 0;
        for (i, &l) in test.labels().iter().enumerate() {
            let img = &test.features().data()[i * img_len..(i + 1) * img_len];
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = img
                        .iter()
                        .zip(&centroids[a])
                        .map(|(x, c)| (x - c) * (x - c))
                        .sum();
                    let db: f32 = img
                        .iter()
                        .zip(&centroids[b])
                        .map(|(x, c)| (x - c) * (x - c))
                        .sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("non-empty");
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f32 / 100.0;
        assert!(acc > 0.7, "nearest-centroid accuracy only {acc}");
    }

    #[test]
    fn label_noise_caps_self_consistency() {
        let mut cfg = small_config();
        cfg.label_noise = 0.5;
        let task = SynthTask::new(cfg).expect("valid config");
        let noisy = task.sample(400, 5).expect("nonzero");
        let clean_task = SynthTask::new(small_config()).expect("valid config");
        let clean = clean_task.sample(400, 5).expect("nonzero");
        let diffs = noisy
            .labels()
            .iter()
            .zip(clean.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs > 100, "label noise had no effect ({diffs} flips)");
    }

    #[test]
    fn config_validation() {
        let mut cfg = small_config();
        cfg.classes = 0;
        assert!(SynthTask::new(cfg).is_err());
        let mut cfg = small_config();
        cfg.label_noise = 2.0;
        assert!(SynthTask::new(cfg).is_err());
        let task = SynthTask::new(small_config()).expect("valid config");
        assert!(task.sample(0, 0).is_err());
        assert!(task.prototype(4).is_err());
        assert!(task.prototype(0).is_ok());
    }

    #[test]
    fn prototypes_are_normalised() {
        let task = SynthTask::new(small_config()).expect("valid config");
        for c in 0..4 {
            let p = task.prototype(c).expect("in range");
            let max_abs = p.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
            assert!((max_abs - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cifar_like_preset() {
        let cfg = SynthImageConfig::cifar_like(20, 1);
        let d = synthetic_cifar(cfg).expect("valid config");
        assert_eq!(d.features().dims(), &[20, 3, 16, 16]);
        assert_eq!(d.classes(), 10);
    }
}
