//! # reduce-data
//!
//! Seeded synthetic datasets for the Reduce (DATE 2023) reproduction.
//!
//! Real CIFAR-10 is not available offline, so the headline experiments use
//! [`synthetic_cifar`] / [`SynthTask`]: a procedurally generated, balanced
//! image-classification task whose difficulty (pixel noise, geometric
//! jitter, label noise) is tuned so a nano-VGG saturates in the low-to-mid
//! 90s — making the paper's 91 % accuracy constraint meaningful. Toy
//! tabular generators ([`blobs`], [`two_moons`], [`spirals`]) support fast
//! tests, and [`Augmenter`] provides seeded flip/shift augmentation.
//!
//! Everything is deterministic given its seeds.
//!
//! # Examples
//!
//! ```
//! use reduce_data::{synthetic_cifar, SynthImageConfig};
//!
//! # fn main() -> Result<(), reduce_data::DataError> {
//! let data = synthetic_cifar(SynthImageConfig::cifar_like(100, 42))?;
//! let (train, test) = data.split(0.8, 0)?;
//! assert_eq!(train.len() + test.len(), 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
// Tests may unwrap/expect freely: a panic there *is* the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod augment;
mod dataset;
mod synth;
mod toy;

pub use augment::Augmenter;
pub use dataset::{DataError, Dataset, Result, Standardization};
pub use synth::{synthetic_cifar, SynthImageConfig, SynthTask};
pub use toy::{blobs, spirals, two_moons};
