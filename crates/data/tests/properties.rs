//! Property-based tests for dataset invariants.

use proptest::prelude::*;
use reduce_data::{blobs, spirals, two_moons, SynthImageConfig, SynthTask};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A split always partitions the dataset: sizes add up, and every
    /// sample appears in exactly one side (verified via feature rows).
    #[test]
    fn split_partitions(
        n in 2usize..200,
        frac in 0.05f32..0.95,
        seed in 0u64..500,
    ) {
        let d = blobs(n, 3, 2, 2.0, 0.5, seed).expect("valid");
        let (tr, te) = d.split(frac, seed).expect("valid fraction");
        prop_assert_eq!(tr.len() + te.len(), n);
        let expected = ((n as f32) * frac).round() as usize;
        prop_assert_eq!(tr.len(), expected.min(n));
    }

    /// Subsets preserve the selected rows exactly, in order.
    #[test]
    fn subset_preserves_rows(
        n in 1usize..50,
        pick in prop::collection::vec(0usize..50, 1..10),
        seed in 0u64..200,
    ) {
        let d = blobs(n, 2, 2, 2.0, 0.5, seed).expect("valid");
        let idx: Vec<usize> = pick.into_iter().map(|i| i % n).collect();
        let s = d.subset(&idx).expect("indices valid");
        prop_assert_eq!(s.len(), idx.len());
        for (k, &i) in idx.iter().enumerate() {
            let want = &d.features().data()[i * 2..(i + 1) * 2];
            let got = &s.features().data()[k * 2..(k + 1) * 2];
            prop_assert_eq!(want, got);
            prop_assert_eq!(s.labels()[k], d.labels()[i]);
        }
    }

    /// Label-noise flip counts concentrate near the requested fraction and
    /// all labels stay in range.
    #[test]
    fn label_noise_in_range(
        frac in 0.0f32..0.8,
        seed in 0u64..300,
    ) {
        let n = 2000;
        let d = blobs(n, 2, 4, 2.0, 0.5, seed).expect("valid");
        let orig = d.labels().to_vec();
        let noisy = d.with_label_noise(frac, seed).expect("valid fraction");
        prop_assert!(noisy.labels().iter().all(|&l| l < 4));
        let flipped = orig
            .iter()
            .zip(noisy.labels())
            .filter(|(a, b)| a != b)
            .count() as f32 / n as f32;
        prop_assert!((flipped - frac).abs() < 0.08, "flipped {flipped} vs {frac}");
    }

    /// Toy generators are deterministic per seed and balanced.
    #[test]
    fn generators_deterministic(n in 4usize..100, seed in 0u64..300) {
        let a = two_moons(n, 0.1, seed).expect("valid");
        let b = two_moons(n, 0.1, seed).expect("valid");
        prop_assert_eq!(&a, &b);
        let s1 = spirals(n, 2, 1.0, 0.05, seed).expect("valid");
        let s2 = spirals(n, 2, 1.0, 0.05, seed).expect("valid");
        prop_assert_eq!(s1, s2);
        // Balance (round-robin): class counts differ by at most 1.
        let counts = a.class_counts();
        prop_assert!(counts.iter().max().expect("non-empty")
            - counts.iter().min().expect("non-empty") <= 1);
    }

    /// Synthetic image sampling is deterministic per (task seed, sample
    /// seed) and produces finite pixels.
    #[test]
    fn synth_images_deterministic(task_seed in 0u64..100, sample_seed in 0u64..100) {
        let cfg = SynthImageConfig {
            classes: 3,
            hw: 6,
            channels: 2,
            samples: 12,
            pixel_noise: 0.3,
            amplitude_jitter: 0.2,
            max_shift: 1,
            label_noise: 0.1,
            seed: task_seed,
        };
        let task = SynthTask::new(cfg).expect("valid config");
        let a = task.sample(12, sample_seed).expect("nonzero");
        let b = task.sample(12, sample_seed).expect("nonzero");
        prop_assert_eq!(&a, &b);
        prop_assert!(a.features().all_finite());
        prop_assert!(a.labels().iter().all(|&l| l < 3));
    }
}
