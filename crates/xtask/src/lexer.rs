//! A small, lossless-enough Rust token scanner.
//!
//! The lint passes need token-level structure — identifiers, punctuation,
//! literals, comments — with accurate line/column positions, and they need
//! string/char/comment contents to *never* be mistaken for code. That is
//! exactly what this hand-rolled scanner provides. It is not a parser: no
//! AST, no precedence — the lint passes work on token patterns plus brace
//! tracking, which is sufficient for the invariants they enforce and keeps
//! the whole linter dependency-free (the build environment has no registry
//! access, so `syn` is not an option).

/// What a token is, at the granularity the lint passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating literal (`1.0`, `2e-3`, `1f32`) — suffix kept in `text`.
    Float,
    /// String, byte-string, raw-string or char literal (contents kept).
    Str,
    /// A single punctuation character (`.`, `(`, `=`, ...).
    Punct,
    /// Line or block comment, text included (needed for `xtask:allow`).
    Comment,
}

/// One scanned token with its position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Raw text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Byte offset of the first byte (used for adjacency checks).
    pub offset: usize,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: u32, col: u32, offset: usize) -> Self {
        Token {
            kind,
            text: text.to_string(),
            line,
            col,
            offset,
        }
    }
}

/// Scans `src` into tokens. Unknown bytes become `Punct` tokens; the
/// scanner never fails, so a syntactically broken file degrades to noisy
/// tokens rather than a lint crash.
pub fn tokenize(src: &str) -> Vec<Token> {
    Scanner {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Scanner<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            let (line, col, start) = (self.line, self.col, self.pos);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.eat_line_comment();
                    out.push(self.token(TokenKind::Comment, start, line, col));
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.eat_block_comment();
                    out.push(self.token(TokenKind::Comment, start, line, col));
                }
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string() => {
                    out.push(self.token(TokenKind::Str, start, line, col));
                }
                b'"' => {
                    self.eat_string();
                    out.push(self.token(TokenKind::Str, start, line, col));
                }
                b'\'' => {
                    let kind = self.eat_quote();
                    out.push(self.token(kind, start, line, col));
                }
                b'0'..=b'9' => {
                    let kind = self.eat_number();
                    out.push(self.token(kind, start, line, col));
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    // Raw identifier (`r#type`); raw *strings* were already
                    // handled by the arm above.
                    if b == b'r' && self.peek(1) == Some(b'#') {
                        self.bump();
                        self.bump();
                    }
                    self.eat_ident();
                    out.push(self.token(TokenKind::Ident, start, line, col));
                }
                _ => {
                    self.bump();
                    out.push(self.token(TokenKind::Punct, start, line, col));
                }
            }
        }
        out
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        Token::new(kind, &self.src[start..self.pos], line, col, start)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
        // Keep columns character-based for multi-byte UTF-8.
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| (b & 0xC0) == 0x80)
        {
            self.pos += 1;
        }
    }

    fn eat_line_comment(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|&b| b != b'\n') {
            self.bump();
        }
    }

    fn eat_block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, `c"..."`,
    /// and raw identifiers (`r#type` → not a string, returns false).
    /// Returns false when the current position is a plain identifier.
    fn raw_or_prefixed_string(&mut self) -> bool {
        let mut i = 0usize;
        // Optional second prefix letter (br / cr).
        if matches!(self.peek(0), Some(b'b' | b'c')) && self.peek(1) == Some(b'r') {
            i = 1;
        }
        let mut hashes = 0usize;
        let raw = self.peek(i) == Some(b'r') || i == 1;
        if raw {
            let mut j = i + 1;
            while self.peek(j) == Some(b'#') {
                hashes += 1;
                j += 1;
            }
            if self.peek(j) != Some(b'"') {
                return false; // raw identifier or plain ident
            }
            for _ in 0..j + 1 {
                self.bump();
            }
            self.eat_raw_string_body(hashes);
            return true;
        }
        if self.peek(1) == Some(b'"') {
            self.bump(); // prefix letter
            self.eat_string();
            return true;
        }
        false
    }

    fn eat_raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'"') {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    fn eat_string(&mut self) {
        self.bump(); // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// A `'` starts either a lifetime (`'a`) or a char literal (`'x'`).
    fn eat_quote(&mut self) -> TokenKind {
        self.bump(); // '
        let first = self.peek(0);
        let second = self.peek(1);
        let ident_start = first.is_some_and(|b| b == b'_' || b.is_ascii_alphabetic() || b >= 0x80);
        if ident_start && second != Some(b'\'') {
            // Lifetime: consume the identifier.
            self.eat_ident();
            return TokenKind::Lifetime;
        }
        // Char literal.
        if first == Some(b'\\') {
            self.bump();
            self.bump();
            // Escapes like \u{1F600} span to the closing brace.
            while self.bytes.get(self.pos).is_some_and(|&b| b != b'\'') {
                self.bump();
            }
        } else if first.is_some() {
            self.bump();
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        TokenKind::Str
    }

    fn eat_ident(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.bump();
        }
    }

    fn eat_number(&mut self) -> TokenKind {
        let mut kind = TokenKind::Int;
        let hex =
            self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'b'));
        self.bump();
        if hex {
            self.bump();
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            return TokenKind::Int;
        }
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'0'..=b'9' | b'_') => self.bump(),
                Some(b'.') => {
                    // `1..3` is two ints and a range; `1.max()` is a method
                    // call; `1.5` and `1.` are floats.
                    match self.peek(1) {
                        Some(b'.') => break,
                        Some(b) if b == b'_' || b.is_ascii_alphabetic() => break,
                        _ => {
                            kind = TokenKind::Float;
                            self.bump();
                        }
                    }
                }
                Some(b'e' | b'E') if matches!(self.peek(1), Some(b'0'..=b'9' | b'+' | b'-')) => {
                    kind = TokenKind::Float;
                    self.bump();
                    if matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                Some(b'f')
                    if self.src[self.pos..].starts_with("f32")
                        || self.src[self.pos..].starts_with("f64") =>
                {
                    kind = TokenKind::Float;
                    for _ in 0..3 {
                        self.bump();
                    }
                    break;
                }
                Some(b) if b.is_ascii_alphabetic() => {
                    // Integer suffix like u64 / usize.
                    self.eat_ident();
                    break;
                }
                _ => break,
            }
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = foo.bar();");
        assert_eq!(ts[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ts[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(ts[4], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"let s = "unwrap() // not code";"#);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ts = kinds(r##"let s = r#"panic!"#; let r#type = 1;"##);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("panic")));
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn comments_are_tokens() {
        let ts = kinds("x // xtask:allow(unwrap): startup config\ny");
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Comment && t.contains("xtask:allow")));
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn numbers() {
        let ts = kinds("0..10 1.5 2e-3 1f32 0xFF 1_000u64 1.max(2)");
        let floats: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "2e-3", "1f32"]);
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Int && t == "0xFF"));
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* outer /* inner */ still */ code");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn positions_are_accurate() {
        let ts = tokenize("ab\n  cd");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }
}
