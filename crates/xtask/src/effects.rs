//! The effect lattice and per-function effect seeding.
//!
//! An *effect* is anything that can make a job body's result depend on
//! something other than its inputs and its seed: ambient entropy, the
//! wall clock, filesystem I/O, iteration over unordered containers, and
//! `unsafe` (which voids every other guarantee the analysis can make).
//! Effects form a small powerset lattice; [`EffectSet`] is its element
//! type and union is the join.
//!
//! Seeding is a token scan over one function body (the same heuristics
//! the token-level lints use, deliberately shared); propagation through
//! the call graph lives in [`crate::graph`].
//!
//! Escape hatch: `// xtask:effect(<effect>): <reason>` on the seed's
//! line or the line above sanctions that *primitive use site* — callers
//! then see the function as clean of that effect. The hatch is on the
//! seed, not the function, so a helper cannot launder an unrelated new
//! seed through an old allow. Reasons are mandatory (≥ 10 chars);
//! unused or reason-less effect-allows are violations themselves.

use crate::lexer::{Token, TokenKind};
use crate::lints::unordered_iter_sites;

/// One effect dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Seedless randomness: `thread_rng`, `from_entropy`, `rand::random`.
    Entropy,
    /// `Instant::now` / `SystemTime::now`.
    WallClock,
    /// Filesystem access: `fs::*`, `File::*`, `OpenOptions`.
    Io,
    /// Iteration over a `HashMap`/`HashSet` (order is unspecified).
    UnorderedIter,
    /// Any `unsafe` block or function.
    Unsafe,
}

/// All effects, in display order.
pub const ALL_EFFECTS: [Effect; 5] = [
    Effect::Entropy,
    Effect::WallClock,
    Effect::Io,
    Effect::UnorderedIter,
    Effect::Unsafe,
];

impl Effect {
    /// Stable kebab-case name used in reports, allows and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Entropy => "entropy",
            Effect::WallClock => "wall-clock",
            Effect::Io => "io",
            Effect::UnorderedIter => "unordered-iter",
            Effect::Unsafe => "unsafe",
        }
    }

    /// Parses an effect name as written in `xtask:effect(..)`.
    pub fn from_name(name: &str) -> Option<Effect> {
        ALL_EFFECTS.into_iter().find(|e| e.name() == name)
    }

    fn bit(self) -> u8 {
        match self {
            Effect::Entropy => 1,
            Effect::WallClock => 2,
            Effect::Io => 4,
            Effect::UnorderedIter => 8,
            Effect::Unsafe => 16,
        }
    }
}

/// A set of effects (element of the powerset lattice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The bottom element: no effects.
    pub fn empty() -> Self {
        EffectSet(0)
    }

    /// Whether `e` is in the set.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Adds one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Removes one effect.
    pub fn remove(&mut self, e: Effect) {
        self.0 &= !e.bit();
    }

    /// Lattice join.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Whether the set is empty (the function infers as pure).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members, in [`ALL_EFFECTS`] order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        ALL_EFFECTS.into_iter().filter(move |e| self.contains(*e))
    }
}

/// One concrete effect introduction site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// Which effect the site introduces.
    pub effect: Effect,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was seen (`Instant::now`, `fs::write`, `for _ in HashMap`).
    pub what: String,
}

/// One `xtask:effect(..)` comment found in a file.
#[derive(Debug)]
pub struct EffectAllow {
    /// The sanctioned effect (`None` if the name was unrecognised).
    pub effect: Option<Effect>,
    /// Whether the mandatory reason is substantive.
    pub reason_ok: bool,
    /// 1-based line of the comment.
    pub line: u32,
    /// Trimmed comment text, for reporting.
    pub text: String,
    /// Whether some seed consumed this allow.
    pub used: bool,
}

/// Collects `xtask:effect(..)` comments from a file's comment tokens.
pub fn collect_effect_allows(comments: &[Token]) -> Vec<EffectAllow> {
    let mut allows = Vec::new();
    for t in comments {
        // Like `xtask:allow`, a real effect-allow is a dedicated comment:
        // the marker must start the comment content. Prose mentions
        // (mid-sentence, backtick-quoted) are not allow attempts.
        let content = t.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = content.strip_prefix("xtask:effect") else {
            continue;
        };
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        let inner = rest.trim_start();
        let inner = inner.strip_prefix('(').unwrap_or(inner);
        let (effect, reason_ok) = match inner.find(')') {
            Some(close) => {
                let effect = Effect::from_name(inner[..close].trim());
                let after = inner[close + 1..].trim_start();
                let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
                (effect, reason.len() >= 10)
            }
            None => (None, false),
        };
        allows.push(EffectAllow {
            effect,
            reason_ok,
            line: t.line,
            text: t.text.trim_start_matches('/').trim().to_string(),
            used: false,
        });
    }
    allows
}

/// Scans one body token slice for effect seeds. `sig` is the signature
/// token slice (for `unordered-iter` parameter bindings).
///
/// Allows in `allows` that match a seed (same line or the line above)
/// are marked used; matched seeds with a substantive reason are dropped.
/// Seeds whose allow lacks a reason are *kept* — the missing
/// justification is the actionable finding, reported by the caller via
/// the unused/bad-allow sweep.
pub fn seed_effects(sig: &[&Token], body: &[&Token], allows: &mut [EffectAllow]) -> Vec<Seed> {
    let mut seeds = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" | "from_entropy" => push(&mut seeds, Effect::Entropy, t, &t.text),
            "random" if prefixed_by(body, i, "rand") => {
                push(&mut seeds, Effect::Entropy, t, "rand::random")
            }
            "Instant" | "SystemTime" if suffixed_by(body, i, "now") => push(
                &mut seeds,
                Effect::WallClock,
                t,
                &format!("{}::now", t.text),
            ),
            "File" | "OpenOptions" if followed_by_path_call(body, i) => {
                push(&mut seeds, Effect::Io, t, &path_what(body, i))
            }
            _ if prefixed_by(body, i, "fs") && followed_by_open_paren(body, i) => {
                push(&mut seeds, Effect::Io, t, &format!("fs::{}", t.text))
            }
            "unsafe" => push(&mut seeds, Effect::Unsafe, t, "unsafe"),
            _ => {}
        }
    }
    for (line, col, what) in unordered_iter_sites(sig, body) {
        seeds.push(Seed {
            effect: Effect::UnorderedIter,
            line,
            col,
            what,
        });
    }
    seeds.sort_by_key(|s| (s.line, s.col));

    // Apply allows: a matching allow on the seed's line or the line above.
    seeds.retain(|s| {
        let slot = allows
            .iter_mut()
            .find(|a| a.effect == Some(s.effect) && (a.line == s.line || a.line + 1 == s.line));
        match slot {
            Some(a) => {
                a.used = true;
                // Kept (= still a seed) when the reason is missing.
                !a.reason_ok
            }
            None => true,
        }
    });
    seeds
}

fn push(seeds: &mut Vec<Seed>, effect: Effect, t: &Token, what: &str) {
    seeds.push(Seed {
        effect,
        line: t.line,
        col: t.col,
        what: what.to_string(),
    });
}

/// True when `body[i]` is preceded by `prefix ::`.
fn prefixed_by(body: &[&Token], i: usize, prefix: &str) -> bool {
    i >= 3 && body[i - 1].text == ":" && body[i - 2].text == ":" && body[i - 3].text == prefix
}

/// True when `body[i]` is followed by `:: suffix`.
fn suffixed_by(body: &[&Token], i: usize, suffix: &str) -> bool {
    body.get(i + 1).is_some_and(|t| t.text == ":")
        && body.get(i + 2).is_some_and(|t| t.text == ":")
        && body.get(i + 3).is_some_and(|t| t.text == suffix)
}

/// True when `body[i]` begins `Name::method(`.
fn followed_by_path_call(body: &[&Token], i: usize) -> bool {
    body.get(i + 1).is_some_and(|t| t.text == ":")
        && body.get(i + 2).is_some_and(|t| t.text == ":")
        && body.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        && body.get(i + 4).is_some_and(|t| t.text == "(")
}

/// True when `body[i]` is itself a call: `ident (`.
fn followed_by_open_paren(body: &[&Token], i: usize) -> bool {
    body.get(i + 1).is_some_and(|t| t.text == "(")
}

fn path_what(body: &[&Token], i: usize) -> String {
    let method = body
        .get(i + 3)
        .map(|t| t.text.as_str())
        .unwrap_or("<method>");
    format!("{}::{}", body[i].text, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn seeds_of(src: &str) -> Vec<(Effect, String)> {
        let tokens = tokenize(src);
        let comments: Vec<Token> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .cloned()
            .collect();
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let mut allows = collect_effect_allows(&comments);
        seed_effects(&[], &code, &mut allows)
            .into_iter()
            .map(|s| (s.effect, s.what))
            .collect()
    }

    #[test]
    fn each_effect_dimension_seeds() {
        assert_eq!(
            seeds_of("let r = thread_rng();"),
            vec![(Effect::Entropy, "thread_rng".to_string())]
        );
        assert_eq!(
            seeds_of("let t = Instant::now();"),
            vec![(Effect::WallClock, "Instant::now".to_string())]
        );
        assert_eq!(
            seeds_of("std::fs::write(path, text)?;"),
            vec![(Effect::Io, "fs::write".to_string())]
        );
        assert_eq!(
            seeds_of("let f = File::create(p)?;"),
            vec![(Effect::Io, "File::create".to_string())]
        );
        assert_eq!(
            seeds_of("unsafe { ptr.read() }"),
            vec![(Effect::Unsafe, "unsafe".to_string())]
        );
        let iter =
            seeds_of("let m: HashMap<u32, u32> = HashMap::new(); for k in m.keys() { use_(k); }");
        assert!(
            iter.iter().any(|(e, _)| *e == Effect::UnorderedIter),
            "{iter:?}"
        );
    }

    #[test]
    fn strings_and_comments_do_not_seed() {
        assert!(seeds_of("let s = \"Instant::now()\"; // fs::write too").is_empty());
    }

    #[test]
    fn effect_allow_sanctions_its_line_only() {
        let src = "\
            // xtask:effect(wall-clock): the one sanctioned stopwatch read site\n\
            let t = Instant::now();\n\
            let u = Instant::now();\n";
        let got = seeds_of(src);
        assert_eq!(got.len(), 1, "second read is not covered: {got:?}");
    }

    #[test]
    fn reasonless_effect_allow_keeps_the_seed() {
        let got = seeds_of("// xtask:effect(io): no\nstd::fs::write(p, t)?;");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn effect_set_is_a_lattice() {
        let mut a = EffectSet::empty();
        a.insert(Effect::Io);
        let mut b = EffectSet::empty();
        b.insert(Effect::Entropy);
        let ab = a.union(b);
        assert!(ab.contains(Effect::Io) && ab.contains(Effect::Entropy));
        assert_eq!(ab.iter().count(), 2);
        let mut c = ab;
        c.remove(Effect::Io);
        assert!(!c.contains(Effect::Io) && !c.is_empty());
        assert_eq!(
            Effect::from_name("unordered-iter"),
            Some(Effect::UnorderedIter)
        );
        assert_eq!(Effect::from_name("nope"), None);
    }
}
