//! Diagnostic rendering: rustc-style text and machine-readable JSON.

use crate::baseline::push_json_string;
use crate::lints::Violation;

/// One finding, located in a workspace-relative file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// The underlying violation.
    pub violation: Violation,
    /// Whether the baseline already tolerates this finding.
    pub baselined: bool,
}

impl Diagnostic {
    /// Renders rustc-style:
    ///
    /// ```text
    /// warning[xtask::unwrap]: `.unwrap()` panics in library code; ...
    ///   --> crates/core/src/fleet.rs:41:17
    /// ```
    ///
    /// Baselined findings render as `note[...]`, new ones as `error[...]`.
    pub fn render_text(&self) -> String {
        let level = if self.baselined { "note" } else { "error" };
        format!(
            "{level}[xtask::{lint}]: {msg}\n  --> {file}:{line}:{col}",
            lint = self.violation.lint.name(),
            msg = self.violation.message,
            file = self.file,
            line = self.violation.line,
            col = self.violation.col,
        )
    }

    /// Renders one JSON object (single line, no trailing comma handling).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"lint\": ");
        push_json_string(&mut out, self.violation.lint.name());
        out.push_str(", \"family\": ");
        push_json_string(&mut out, self.violation.lint.family());
        out.push_str(", \"file\": ");
        push_json_string(&mut out, &self.file);
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"baselined\": {}, \"message\": ",
            self.violation.line, self.violation.col, self.baselined
        ));
        push_json_string(&mut out, &self.violation.message);
        out.push('}');
        out
    }
}

/// Renders the full report in the requested format.
pub fn render_report(diags: &[Diagnostic], json: bool) -> String {
    if json {
        let mut out = String::from("{\"diagnostics\": [");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n  ");
            out.push_str(&d.render_json());
        }
        let new = diags.iter().filter(|d| !d.baselined).count();
        out.push_str(&format!(
            "\n], \"total\": {}, \"new\": {}, \"baselined\": {}}}\n",
            diags.len(),
            new,
            diags.len() - new
        ));
        out
    } else {
        // Text mode shows only *new* findings; baselined debt is a count
        // (the full list is one `--format json` away).
        let mut out = String::new();
        for d in diags.iter().filter(|d| !d.baselined) {
            out.push_str(&d.render_text());
            out.push_str("\n\n");
        }
        let new = diags.iter().filter(|d| !d.baselined).count();
        out.push_str(&format!(
            "xtask lint: {} finding(s): {} new, {} baselined\n",
            diags.len(),
            new,
            diags.len() - new
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Lint, Violation};

    fn diag(baselined: bool) -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/fleet.rs".to_string(),
            violation: Violation {
                lint: Lint::Unwrap,
                line: 41,
                col: 17,
                message: "`.unwrap()` panics in library code".to_string(),
            },
            baselined,
        }
    }

    #[test]
    fn text_rendering_matches_rustc_shape() {
        let text = diag(false).render_text();
        assert!(text.starts_with("error[xtask::unwrap]: "));
        assert!(text.contains("--> crates/core/src/fleet.rs:41:17"));
        assert!(diag(true)
            .render_text()
            .starts_with("note[xtask::unwrap]: "));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = diag(false).render_json();
        assert!(json.contains("\"lint\": \"unwrap\""));
        assert!(json.contains("\"family\": \"panic-freedom\""));
        assert!(json.contains("\"line\": 41, \"col\": 17"));
        assert!(json.contains("\"baselined\": false"));
    }

    #[test]
    fn report_counts_new_vs_baselined() {
        let report = render_report(&[diag(false), diag(true), diag(true)], false);
        assert!(report.contains("3 finding(s): 1 new, 2 baselined"));
        let json = render_report(&[diag(false), diag(true)], true);
        assert!(json.contains("\"total\": 2, \"new\": 1, \"baselined\": 1"));
    }
}
