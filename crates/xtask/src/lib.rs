//! `xtask` — the workspace's own static-analysis pass.
//!
//! Run as `cargo xtask lint` (the alias lives in `.cargo/config.toml`).
//! See `DESIGN.md` § "Static analysis & invariants" for the rationale and
//! the full lint catalogue, and [`lints`] for the individual passes.
//!
//! Implementation note: the issue that motivated this crate assumed a
//! `syn`-based AST walk, but this workspace builds fully offline and
//! carries no external dependencies, so the engine is a hand-rolled
//! comment/string/lifetime-aware lexer ([`lexer`]) plus token-pattern
//! passes ([`lints`]). For the specific invariants enforced here the
//! token stream carries enough structure (attributes, brace depth,
//! adjacency), and the lexer is itself unit-tested against the tricky
//! cases (raw strings, nested comments, lifetimes vs chars, `r#idents`).

pub mod baseline;
pub mod diagnostics;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;

use baseline::Baseline;
use diagnostics::Diagnostic;
use lints::{lint_source, Scope};
use std::path::{Path, PathBuf};

/// Crates whose library code must be deterministic and panic-free: they
/// produce or transform the results the paper's claims rest on.
const RESULT_CRATES: [&str; 5] = [
    "crates/core",
    "crates/systolic",
    "crates/nn",
    "crates/data",
    "crates/tensor",
];

/// Crates whose kernels do the floating-point work, where the
/// numeric-safety family applies.
const NUMERIC_CRATES: [&str; 3] = ["crates/tensor", "crates/systolic", "crates/nn"];

/// The per-iteration hot path: layer forward/backward implementations,
/// where the hot-path-alloc family applies.
const HOT_PATH_DIR: &str = "crates/nn/src/layers/";

/// The GEMM kernel directory: drivers, packers and microkernels run
/// inside the innermost matmul loops, so the hot-path-alloc family
/// applies there too — with its own function-name prefixes.
const GEMM_HOT_DIR: &str = "crates/tensor/src/ops/gemm/";

/// The one sanctioned direct-write call site: the atomic temp-file+rename
/// artifact writer everything else must go through.
const ATOMIC_WRITER: &str = "crates/core/src/artifact.rs";

/// The bench binaries write result artifacts too (CSVs, run dirs), so the
/// artifact-io family extends to their sources.
const BENCH_SRC: &str = "crates/bench/src/";

/// This crate's own sources: linted for determinism, artifact-io and the
/// unsafe gate, so the linter is held to the invariants it enforces.
const XTASK_SRC: &str = "crates/xtask/src/";

/// Declared unsafe islands: path prefixes (workspace-relative) where
/// `unsafe` is sanctioned. Currently empty — all six crate roots carry
/// `#![forbid(unsafe_code)]` and the gate keeps it that way. When a SIMD
/// GEMM kernel lands (ROADMAP), its file is added here *and* its crate
/// root relaxes `forbid` to `deny` with a module-level `allow`; the gate
/// then confines `unsafe` to exactly that island.
pub const UNSAFE_ISLANDS: &[&str] = &[];

/// Decides which lint families apply to a workspace-relative path.
///
/// Only `src/` trees of result-producing crates get the full treatment;
/// tests, examples and the vendored shims are out of scope (they do not
/// produce results). Two partial scopes: the bench binaries write result
/// artifacts, so the artifact-io family extends to `crates/bench/src/`;
/// and this crate's own sources are linted for determinism, artifact-io
/// and the unsafe gate — a linter whose own report order depends on hash
/// seeds cannot credibly enforce determinism on anyone else. The unsafe
/// gate itself covers *every* crate's `src/` tree except declared
/// [`UNSAFE_ISLANDS`].
pub fn scope_for_path(rel: &str) -> Scope {
    let in_src =
        |krate: &str| rel.starts_with(&format!("{krate}/src/")) || rel == format!("{krate}/src");
    let in_xtask = rel.starts_with(XTASK_SRC);
    Scope {
        determinism: RESULT_CRATES.iter().any(|c| in_src(c)) || in_xtask,
        panic_freedom: RESULT_CRATES.iter().any(|c| in_src(c)),
        numeric: NUMERIC_CRATES.iter().any(|c| in_src(c)),
        hot_path: if rel.starts_with(HOT_PATH_DIR) {
            lints::LAYER_HOT_PREFIXES
        } else if rel.starts_with(GEMM_HOT_DIR) {
            lints::GEMM_HOT_PREFIXES
        } else {
            &[]
        },
        artifact_io: (RESULT_CRATES.iter().any(|c| in_src(c))
            || rel.starts_with(BENCH_SRC)
            || in_xtask)
            && rel != ATOMIC_WRITER,
        unsafe_gate: is_crate_src(rel) && unsafe_gated(rel, UNSAFE_ISLANDS),
    }
}

/// Whether `rel` has the exact `crates/<name>/src/**` shape. Tests,
/// fixture corpora (including mini-workspaces nested under a crate's
/// `tests/` tree) and the umbrella `src/` are excluded.
pub fn is_crate_src(rel: &str) -> bool {
    let mut parts = rel.split('/');
    parts.next() == Some("crates")
        && parts.next().is_some_and(|s| !s.is_empty())
        && parts.next() == Some("src")
        && parts.next().is_some()
}

/// Whether `rel` falls under the unsafe gate given an island list —
/// factored out so the (currently empty) island mechanism is testable.
pub fn unsafe_gated(rel: &str, islands: &[&str]) -> bool {
    !islands.iter().any(|p| rel.starts_with(p))
}

/// Recursively collects `.rs` files under `root`, skipping `target/`,
/// `.git/` and `vendor/`. Paths come back workspace-relative with
/// forward slashes, sorted.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "vendor" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Outcome of a full workspace lint.
#[derive(Debug)]
pub struct LintRun {
    /// All findings, including baselined ones.
    pub diagnostics: Vec<Diagnostic>,
    /// Fresh per-file counts, i.e. what `--update-baseline` would write.
    pub observed: Baseline,
    /// Baseline entries that over-tolerate: `(file, lint, allowed,
    /// observed)` where observed < allowed. The ratchet only holds if
    /// improvements are locked in, so stale entries fail the run too —
    /// with a different message ("tighten the file") than new violations.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl LintRun {
    /// Findings not covered by the baseline.
    pub fn new_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.baselined).count()
    }
}

/// Lints every in-scope file under `root`, comparing against `baseline`.
///
/// Baselining is per `(file, lint)`: if a file has at most its baselined
/// count for a lint, all those findings are marked tolerated; one extra
/// and *every* finding of that lint in that file is reported as new (the
/// tool cannot know which occurrence was added, and showing all of them
/// is what the fixing developer needs anyway).
pub fn run_lint(root: &Path, baseline: &Baseline) -> std::io::Result<LintRun> {
    let mut diagnostics = Vec::new();
    let mut observed = Baseline::default();
    for rel in workspace_rs_files(root)? {
        let scope = scope_for_path(&rel);
        let src = std::fs::read_to_string(root.join(&rel))?;
        let violations = lint_source(&src, scope);
        if violations.is_empty() {
            continue;
        }
        let counts = lints::count_by_lint(&violations);
        for v in violations {
            let within = counts.get(v.lint.name()).copied().unwrap_or(0)
                <= baseline.allowed(&rel, v.lint.name());
            diagnostics.push(Diagnostic {
                file: rel.clone(),
                violation: v,
                baselined: within,
            });
        }
        observed.files.insert(rel, counts);
    }
    let mut stale = Vec::new();
    for (file, lints) in &baseline.files {
        for (lint, &allowed) in lints {
            let seen = observed.allowed(file, lint);
            if seen < allowed {
                stale.push((file.clone(), lint.clone(), allowed, seen));
            }
        }
    }
    Ok(LintRun {
        diagnostics,
        observed,
        stale,
    })
}

/// Default baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "crates/xtask/lint-baseline.json";

/// Loads the checked-in baseline; a missing file is an empty baseline.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_PATH);
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let src =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Baseline::from_json(&src).map_err(|e| format!("parsing {}: {e}", path.display()))
}

/// Finds the workspace root: walks up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_covers_result_crates_only() {
        let s = scope_for_path("crates/core/src/fleet.rs");
        assert!(s.determinism && s.panic_freedom && !s.numeric && s.hot_path.is_empty());
        let s = scope_for_path("crates/systolic/src/mapping.rs");
        assert!(s.determinism && s.panic_freedom && s.numeric && s.hot_path.is_empty());
        let s = scope_for_path("crates/tensor/src/linalg.rs");
        assert!(s.numeric);
        // The hot-path-alloc family applies to layer implementations
        // (forward/backward bodies) …
        let s = scope_for_path("crates/nn/src/layers/conv2d.rs");
        assert!(s.numeric && s.panic_freedom);
        assert_eq!(s.hot_path, lints::LAYER_HOT_PREFIXES);
        assert!(scope_for_path("crates/nn/src/trainer.rs")
            .hot_path
            .is_empty());
        // … and to the GEMM kernel directory, with its own prefixes
        // (drivers, packers, microkernels).
        let s = scope_for_path("crates/tensor/src/ops/gemm/microkernel.rs");
        assert_eq!(s.hot_path, lints::GEMM_HOT_PREFIXES);
        assert!(s.numeric && s.panic_freedom && s.determinism);
        assert_eq!(
            scope_for_path("crates/tensor/src/ops/gemm/mod.rs").hot_path,
            lints::GEMM_HOT_PREFIXES
        );
        // Sibling ops files outside the kernel directory stay uncovered.
        assert!(scope_for_path("crates/tensor/src/ops/matmul.rs")
            .hot_path
            .is_empty());
        // The artifact-io family covers result crates and the bench
        // binaries, except the atomic writer itself.
        assert!(scope_for_path("crates/core/src/fleet.rs").artifact_io);
        let s = scope_for_path("crates/bench/src/bin/fig2.rs");
        assert!(s.artifact_io && !s.determinism && !s.panic_freedom);
        assert!(!scope_for_path("crates/core/src/artifact.rs").artifact_io);
        // Out of scope: tests and the umbrella package.
        assert_eq!(scope_for_path("crates/core/tests/policy.rs"), Scope::none());
        assert_eq!(scope_for_path("src/lib.rs"), Scope::none());
        // The linter lints itself: determinism + artifact-io + the unsafe
        // gate, but not the panic-freedom/numeric families (a CLI tool may
        // index and unwrap; it may not be nondeterministic).
        let s = scope_for_path("crates/xtask/src/lints.rs");
        assert!(s.determinism && s.artifact_io && s.unsafe_gate);
        assert!(!s.panic_freedom && !s.numeric && s.hot_path.is_empty());
        // Fixture files under tests/ stay unlinted — they hold deliberate
        // violations.
        assert_eq!(
            scope_for_path("crates/xtask/tests/fixtures/unsafe_island.rs"),
            Scope::none()
        );
    }

    #[test]
    fn unsafe_gate_covers_every_crate_src() {
        for rel in [
            "crates/core/src/exec.rs",
            "crates/bench/src/bin/fig2.rs",
            "crates/xtask/src/graph.rs",
            "crates/tensor/src/linalg.rs",
        ] {
            assert!(scope_for_path(rel).unsafe_gate, "{rel} must be gated");
        }
        assert!(!scope_for_path("crates/core/tests/policy.rs").unsafe_gate);
        // Fixture mini-workspaces nested under a tests tree look like
        // `crates/*/src/*` by substring but must stay out of scope.
        let nested = "crates/xtask/tests/effect_fixtures/crates/app/src/lib.rs";
        assert!(!is_crate_src(nested));
        assert_eq!(scope_for_path(nested), Scope::none());
        // UNSAFE_ISLANDS is deliberately empty: all crate roots carry
        // `#![forbid(unsafe_code)]` today.
        assert!(UNSAFE_ISLANDS.is_empty());
        // The island declaration mechanism itself, with a synthetic list:
        // a declared island prefix exempts exactly its subtree.
        let islands = ["crates/systolic/src/gemm_simd.rs"];
        assert!(!unsafe_gated("crates/systolic/src/gemm_simd.rs", &islands));
        assert!(unsafe_gated("crates/systolic/src/mapping.rs", &islands));
        assert!(unsafe_gated("crates/core/src/exec.rs", &islands));
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above xtask");
        assert!(root.join("crates/xtask").is_dir());
    }
}
