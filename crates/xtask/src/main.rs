//! CLI entry point: `cargo xtask lint [--format json|text]
//! [--update-baseline] [--root <dir>]`.
//!
//! Exit codes: 0 = clean (all findings baselined), 1 = new findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{diagnostics, find_workspace_root, load_baseline, run_lint, BASELINE_PATH};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace static analysis for the Reduce reproduction

USAGE:
    cargo xtask lint [OPTIONS]

OPTIONS:
    --format <text|json>   Output format (default: text)
    --update-baseline      Rewrite crates/xtask/lint-baseline.json from
                           the current findings and exit 0
    --root <dir>           Workspace root (default: discovered from cwd)
    -h, --help             Show this help
";

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("error: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let baseline = match load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let run = match run_lint(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: linting failed: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        let path = root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, run.observed.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} tolerated finding(s) across {} file(s))",
            BASELINE_PATH,
            run.observed.total(),
            run.observed.files.len()
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", diagnostics::render_report(&run.diagnostics, json));
    if run.new_count() > 0 {
        if !json {
            eprintln!(
                "error: {} new finding(s) not covered by {} — fix them, justify with \
                 `// xtask:allow(<lint>): <reason>`, or (for legacy debt only) run \
                 `cargo xtask lint --update-baseline`",
                run.new_count(),
                BASELINE_PATH
            );
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
