//! CLI entry point:
//!
//! - `cargo xtask lint [--format json|text] [--update-baseline]
//!   [--explain <lint-name>] [--root <dir>]` — the token lints.
//! - `cargo xtask graph [--format json|text] [--check] [--root <dir>]`
//!   — the workspace call graph + effect analysis.
//!
//! Exit codes: 0 = clean (all findings baselined), 1 = new findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::graph::{check_against_baseline, observed_effects, render_json, render_text};
use xtask::lints::Lint;
use xtask::{
    diagnostics, find_workspace_root, graph::analyze_workspace, graph::EffectPolicy, load_baseline,
    run_lint, BASELINE_PATH,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace static analysis for the Reduce reproduction

USAGE:
    cargo xtask lint  [OPTIONS]
    cargo xtask graph [OPTIONS]

LINT OPTIONS:
    --format <text|json>   Output format (default: text)
    --explain <lint-name>  Print a lint's rule, rationale and fix, then exit
    --update-baseline      Rewrite crates/xtask/lint-baseline.json from
                           the current findings (lints + effects) and exit 0
    --root <dir>           Workspace root (default: discovered from cwd)

GRAPH OPTIONS:
    --format <text|json>   Output format (default: text)
    --check                Exit non-zero on effect violations not covered
                           by the baseline (the CI gate)
    --root <dir>           Workspace root (default: discovered from cwd)

    -h, --help             Show this help
";

/// Parses `--root`/cwd discovery, shared by both subcommands.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    if let Some(r) = root {
        return Ok(r);
    }
    let cwd = std::env::current_dir().map_err(|e| {
        eprintln!("error: cannot determine cwd: {e}");
        ExitCode::from(2)
    })?;
    find_workspace_root(&cwd).ok_or_else(|| {
        eprintln!("error: no workspace root above {}", cwd.display());
        ExitCode::from(2)
    })
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("error: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update = true,
            "--explain" => match it.next() {
                Some(name) => explain = Some(name.clone()),
                None => {
                    eprintln!("error: --explain expects a lint name");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(name) = explain {
        return explain_lint(&name);
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };

    let baseline = match load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let run = match run_lint(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: linting failed: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        // The baseline carries both ratchet sections; refresh the effect
        // half from a fresh graph analysis so one command updates the
        // whole file.
        let analysis = match analyze_workspace(&root, &EffectPolicy::default()) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: effect analysis failed: {e}");
                return ExitCode::from(2);
            }
        };
        let mut observed = run.observed;
        observed.effects = observed_effects(&analysis);
        let path = root.join(BASELINE_PATH);
        // xtask:allow(artifact-io): the baseline is a dev-tool config refreshed atomically enough by git; not a run artifact
        if let Err(e) = std::fs::write(&path, observed.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} tolerated finding(s) across {} file(s), {} effect root(s))",
            BASELINE_PATH,
            observed.total(),
            observed.files.len(),
            observed.effects.len()
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", diagnostics::render_report(&run.diagnostics, json));
    let mut failed = false;
    if run.new_count() > 0 {
        failed = true;
        if !json {
            eprintln!(
                "error: {} new finding(s) not covered by {} — fix them, justify with \
                 `// xtask:allow(<lint>): <reason>`, or (for legacy debt only) run \
                 `cargo xtask lint --update-baseline`",
                run.new_count(),
                BASELINE_PATH
            );
        }
    }
    if !run.stale.is_empty() {
        failed = true;
        if !json {
            for (file, lint, allowed, seen) in &run.stale {
                eprintln!(
                    "error: stale baseline entry — {file} tolerates {allowed} `{lint}` but only \
                     {seen} observed; tighten the file (re-run `cargo xtask lint \
                     --update-baseline` and commit the smaller baseline)"
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `cargo xtask lint --explain <name>`: the lint's contract in full.
fn explain_lint(name: &str) -> ExitCode {
    match Lint::from_name(name) {
        Some(lint) => {
            let (rule, rationale, fix) = lint.explain();
            println!("{} (family: {})\n", lint.name(), lint.family());
            println!("rule:      {rule}");
            println!("rationale: {rationale}");
            println!("fix:       {fix}");
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = Lint::all().iter().map(|l| l.name()).collect();
            eprintln!(
                "error: unknown lint `{name}`; known lints: {}",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn graph(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("error: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let baseline = match load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_workspace(&root, &EffectPolicy::default()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: effect analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&analysis));
    } else {
        print!("{}", render_text(&analysis));
    }

    if !check {
        return ExitCode::SUCCESS;
    }
    let result = check_against_baseline(&analysis, &baseline);
    let mut failed = false;
    for fresh in &result.fresh {
        failed = true;
        eprintln!(
            "error: new effect violation not covered by {BASELINE_PATH} — {fresh}\n  fix the \
             chain, sanction the seed with `// xtask:effect(<effect>): <reason>`, or (for \
             legacy debt only) run `cargo xtask lint --update-baseline`"
        );
    }
    for (root_fn, effect) in &result.stale {
        failed = true;
        eprintln!(
            "error: stale baseline entry — root `{root_fn}` no longer leaks `{effect}`; \
             tighten the file (re-run `cargo xtask lint --update-baseline` and commit the \
             smaller baseline)"
        );
    }
    if !analysis.allow_findings.is_empty() {
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
