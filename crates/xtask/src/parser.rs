//! Item-level parsing on top of the token scanner.
//!
//! The effect-inference pass ([`crate::graph`]) needs more structure than
//! the token-pattern lints: which functions exist, what their qualified
//! names are (`module::Type::name`), where their bodies start and end,
//! and what `use` declarations are in scope for best-effort call
//! resolution. This module recovers exactly that — and nothing more —
//! from the [`crate::lexer`] token stream: no expressions, no types, no
//! precedence. Function bodies stay opaque token slices that the effect
//! seeder and call extractor scan linearly.
//!
//! The parser never fails: unparseable constructs degrade to missing
//! items, which the analysis treats as unresolved (and therefore
//! effect-free) calls. That is the deliberate trade-off of an offline,
//! dependency-free linter; DESIGN.md §11 spells out the resulting
//! over/under-approximation contract.

use crate::lexer::{tokenize, Token, TokenKind};
use crate::lints::test_exempt_lines;
use std::collections::BTreeSet;

/// One parsed function (or method) item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`run_observed`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`ResilienceRunner`).
    pub owner: Option<String>,
    /// In-file module nesting (`["telemetry"]` for `mod telemetry { .. }`).
    pub modules: Vec<String>,
    /// Code-token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Code-token index range of the body `{ .. }`, inclusive of both
    /// braces; `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the first parameter is some form of `self`.
    pub has_self: bool,
    /// Whether the item sits inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` or bare `name` — the in-crate suffix of the id.
    pub fn qualified(&self) -> String {
        let mut q = String::new();
        for m in &self.modules {
            q.push_str(m);
            q.push_str("::");
        }
        if let Some(owner) = &self.owner {
            q.push_str(owner);
            q.push_str("::");
        }
        q.push_str(&self.name);
        q
    }
}

/// One `use` alias: `use a::b::c as d` binds `d` to `["a","b","c"]`.
/// Glob imports (`use a::b::*`) bind the empty alias to the prefix.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Local name the import binds (empty for globs).
    pub alias: String,
    /// Full path segments as written (minus `as` clauses).
    pub path: Vec<String>,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Code tokens (comments stripped) — all `FnItem` indices point here.
    pub code: Vec<Token>,
    /// Comment tokens (for `xtask:effect` allow collection).
    pub comments: Vec<Token>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// All `use` aliases (file-wide; function-local uses are folded in,
    /// a harmless over-approximation).
    pub uses: Vec<UseDecl>,
    /// Lines belonging to `#[cfg(test)]` / `#[test]` code.
    pub test_lines: BTreeSet<u32>,
}

/// Scope frames the parser tracks while walking the brace structure.
#[derive(Debug)]
enum Frame {
    /// `mod name { .. }`
    Mod(String),
    /// `impl Type { .. }`, `impl Trait for Type { .. }`, `trait Name { .. }`
    Type(String),
    /// Any other `{ .. }` (fn bodies, expression blocks, match arms).
    Block,
}

/// Parses one file. Never fails; see the module docs for the contract.
pub fn parse_file(src: &str) -> ParsedFile {
    let tokens = tokenize(src);
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .into_iter()
        .partition(|t| t.kind != TokenKind::Comment);
    let refs: Vec<&Token> = code.iter().collect();
    let test_lines: BTreeSet<u32> = test_exempt_lines(&refs).into_iter().collect();

    let mut fns = Vec::new();
    let mut uses = Vec::new();
    // Stack of (depth-after-open, frame); a frame opened by the `{` that
    // took depth from d to d+1 pops when depth returns to d.
    let mut frames: Vec<(i32, Frame)> = Vec::new();
    let mut depth: i32 = 0;
    // Brace indices that open a named scope, pre-computed when the
    // introducing keyword is seen.
    let mut named_braces: Vec<(usize, Frame)> = Vec::new();

    let mut i = 0usize;
    while i < refs.len() {
        let t = refs[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "mod") => {
                if let Some(name) = refs.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if refs.get(i + 2).is_some_and(|b| b.text == "{") {
                        named_braces.push((i + 2, Frame::Mod(name.text.clone())));
                    }
                }
            }
            (TokenKind::Ident, "impl") => {
                if let Some((brace, ty)) = impl_target(&refs, i) {
                    named_braces.push((brace, Frame::Type(ty)));
                }
            }
            (TokenKind::Ident, "trait") => {
                if let Some(name) = refs.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if let Some(brace) = find_scope_open(&refs, i + 2) {
                        named_braces.push((brace, Frame::Type(name.text.clone())));
                    }
                }
            }
            (TokenKind::Ident, "use") => {
                let end = parse_use(&refs, i + 1, &mut uses);
                i = end;
                continue;
            }
            (TokenKind::Ident, "fn") => {
                if let Some(item) = parse_fn(&refs, i, &frames, &test_lines) {
                    fns.push(item);
                }
                // Do not skip the body: nested fns/mods inside it must
                // still be discovered, and plain depth tracking keeps the
                // frame stack consistent through it.
            }
            (TokenKind::Punct, "{") => {
                depth += 1;
                let frame = match named_braces.iter().position(|(at, _)| *at == i) {
                    Some(pos) => named_braces.remove(pos).1,
                    None => Frame::Block,
                };
                frames.push((depth, frame));
            }
            (TokenKind::Punct, "}") => {
                while frames.last().is_some_and(|(d, _)| *d >= depth) {
                    frames.pop();
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }

    ParsedFile {
        code,
        comments,
        fns,
        uses,
        test_lines,
    }
}

/// For `impl<G> Trait<X> for Type<G> where ..` at `impl_idx`, returns the
/// opening-brace index and the implemented-on type's last path segment.
fn impl_target(code: &[&Token], impl_idx: usize) -> Option<(usize, String)> {
    let brace = find_scope_open(code, impl_idx + 1)?;
    let span = &code[impl_idx + 1..brace];
    // The target path: everything after a top-level `for`, else the whole
    // span. Its name is the last ident at angle-depth 0 before generics.
    let mut angle = 0i32;
    let mut after_for = None;
    for (k, t) in span.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") if !is_arrow(span, k) => angle -= 1,
            (TokenKind::Ident, "for") if angle == 0 => after_for = Some(k + 1),
            (TokenKind::Ident, "where") if angle == 0 => break,
            _ => {}
        }
    }
    let target = &span[after_for.unwrap_or(0)..];
    let mut angle = 0i32;
    let mut name = None;
    for (k, t) in target.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") if !is_arrow(target, k) => angle -= 1,
            (TokenKind::Ident, "where") if angle == 0 => break,
            (TokenKind::Ident, _) if angle == 0 => name = Some(t.text.clone()),
            _ => {}
        }
    }
    name.map(|n| (brace, n))
}

/// `>` tokens that are really the tail of a `->` arrow.
fn is_arrow(span: &[&Token], k: usize) -> bool {
    k > 0 && span[k - 1].text == "-" && span[k].offset == span[k - 1].offset + 1
}

/// Finds the `{` that opens a scope introduced at `from`, skipping
/// generics, parens and `->` arrows; `None` if a `;` ends it first.
fn find_scope_open(code: &[&Token], from: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    for k in from..code.len() {
        let t = code[k];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "<" => angle += 1,
            ">" if !is_arrow(code, k) && angle > 0 => angle -= 1,
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if angle == 0 && paren == 0 => return Some(k),
            ";" if angle == 0 && paren == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Parses the `fn` item starting at `fn_idx` (the `fn` keyword).
fn parse_fn(
    code: &[&Token],
    fn_idx: usize,
    frames: &[(i32, Frame)],
    test_lines: &BTreeSet<u32>,
) -> Option<FnItem> {
    let name_tok = code.get(fn_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn` inside e.g. a closure type `Fn(..)` is Ident "Fn", not "fn"
    }
    let name = name_tok.text.clone();
    let body = find_scope_open(code, fn_idx + 2).map(|open| {
        let close = matching_brace(code, open);
        (open, close)
    });
    // `self` receiver: first token run inside the first paren group.
    let has_self = {
        let mut k = fn_idx + 2;
        let mut angle = 0i32;
        // Skip generics between the name and the parameter list.
        loop {
            match code.get(k) {
                Some(t) if t.text == "<" => angle += 1,
                Some(t) if t.text == ">" && !is_arrow(code, k) => angle -= 1,
                Some(t) if t.text == "(" && angle == 0 => break,
                Some(t) if (t.text == "{" || t.text == ";") && angle == 0 => break,
                Some(_) => {}
                None => break,
            }
            k += 1;
        }
        // Inside `( .. )`: any `self` ident before the first `,` at depth 1.
        let mut found = false;
        if code.get(k).is_some_and(|t| t.text == "(") {
            let mut d = 0i32;
            for t in code.iter().skip(k) {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "(") => d += 1,
                    (TokenKind::Punct, ")") => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    (TokenKind::Punct, ",") if d == 1 => break,
                    (TokenKind::Ident, "self") => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        found
    };
    let modules: Vec<String> = frames
        .iter()
        .filter_map(|(_, f)| match f {
            Frame::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    let owner = frames.iter().rev().find_map(|(_, f)| match f {
        Frame::Type(t) => Some(t.clone()),
        _ => None,
    });
    Some(FnItem {
        name,
        owner,
        modules,
        fn_idx,
        body,
        line: name_tok.line,
        has_self,
        is_test: test_lines.contains(&name_tok.line),
    })
}

/// Index of the `}` matching the `{` at `open` (last token if unclosed).
pub fn matching_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Parses one `use` declaration starting just after the `use` keyword;
/// returns the index just past its terminating `;`.
fn parse_use(code: &[&Token], from: usize, out: &mut Vec<UseDecl>) -> usize {
    // Collect the token span up to the `;` (tracking brace groups).
    let mut end = from;
    let mut depth = 0i32;
    while end < code.len() {
        match code[end].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    expand_use(&code[from..end], &[], out);
    end + 1
}

/// Recursively expands `a::b::{c as d, e::f, *}` into flat aliases.
fn expand_use(span: &[&Token], prefix: &[String], out: &mut Vec<UseDecl>) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut k = 0usize;
    while k < span.len() {
        let t = span[k];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "as") => {
                // `path as alias` — the alias is the binding name.
                if let Some(alias) = span.get(k + 1) {
                    out.push(UseDecl {
                        alias: alias.text.clone(),
                        path: path.clone(),
                    });
                }
                return;
            }
            (TokenKind::Ident, _) => path.push(t.text.clone()),
            (TokenKind::Punct, "*") => {
                out.push(UseDecl {
                    alias: String::new(),
                    path: path.clone(),
                });
                return;
            }
            (TokenKind::Punct, "{") => {
                // Split the group body at top-level commas and recurse.
                let close = matching_group(span, k);
                let inner = &span[k + 1..close];
                let mut start = 0usize;
                let mut depth = 0i32;
                for (j, u) in inner.iter().enumerate() {
                    match u.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            expand_use(&inner[start..j], &path, out);
                            start = j + 1;
                        }
                        _ => {}
                    }
                }
                if start < inner.len() {
                    expand_use(&inner[start..], &path, out);
                }
                return;
            }
            _ => {}
        }
        k += 1;
    }
    if let Some(last) = path.last().cloned() {
        out.push(UseDecl { alias: last, path });
    }
}

fn matching_group(span: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in span.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    span.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn free_and_method_fns_are_qualified() {
        let p = parse(
            "pub fn top() {}\n\
             mod inner { pub fn nested() {} }\n\
             impl Widget { fn method(&self) {} fn assoc() -> u32 { 1 } }\n\
             impl Display for Widget { fn fmt(&self, f: &mut F) -> R { todo() } }\n\
             trait Act { fn go(&self) { self.go() } fn sig(&self); }",
        );
        let quals: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            quals,
            vec![
                "top",
                "inner::nested",
                "Widget::method",
                "Widget::assoc",
                "Widget::fmt",
                "Act::go",
                "Act::sig"
            ]
        );
        assert!(p.fns[2].has_self && !p.fns[3].has_self);
        assert!(p.fns[6].body.is_none(), "bodyless trait method");
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        let p = parse(
            "fn fan<T: Sync, F>(items: &[T], job: F) -> Result<Vec<u32>>\n\
             where F: Fn(usize, &T) -> Result<u32> + Sync { job(0, &items[0]) }",
        );
        assert_eq!(p.fns.len(), 1);
        let (open, close) = p.fns[0].body.expect("body found");
        assert_eq!(p.code[open].text, "{");
        assert_eq!(p.code[close].text, "}");
        assert!(close > open + 5);
    }

    #[test]
    fn nested_fns_and_test_mods_are_seen() {
        let p = parse(
            "fn outer() { fn helper() {} helper() }\n\
             #[cfg(test)] mod tests { #[test] fn probe() {} }",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "helper", "probe"]);
        assert!(p.fns[2].is_test && !p.fns[0].is_test);
        assert_eq!(p.fns[2].modules, vec!["tests".to_string()]);
    }

    #[test]
    fn use_declarations_expand() {
        let p = parse(
            "use std::collections::{BTreeMap, HashMap as Map};\n\
             use crate::exec::parallel_map;\n\
             use super::helpers::*;",
        );
        let find = |alias: &str| p.uses.iter().find(|u| u.alias == alias);
        assert_eq!(
            find("BTreeMap").expect("group import").path,
            vec!["std", "collections", "BTreeMap"]
        );
        assert_eq!(
            find("Map").expect("renamed import").path,
            vec!["std", "collections", "HashMap"]
        );
        assert_eq!(
            find("parallel_map").expect("plain import").path,
            vec!["crate", "exec", "parallel_map"]
        );
        let glob = p.uses.iter().find(|u| u.alias.is_empty()).expect("glob");
        assert_eq!(glob.path, vec!["super", "helpers"]);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let p = parse(
            "impl<T> From<Wrapper<T>> for Inner<T> { fn from(w: Wrapper<T>) -> Self { w.0 } }",
        );
        assert_eq!(p.fns[0].qualified(), "Inner::from");
    }
}
