//! The lint passes: repo-specific invariants that clippy cannot express.
//!
//! Four families, mirroring the guarantees the Reduce framework's results
//! depend on:
//!
//! - **determinism** — a resilience table measured once (Step ①) is only
//!   trustworthy for later per-chip selection (Step ②/③) if every
//!   fault-injection and retraining run is bit-reproducible from its seed.
//!   Ambient entropy (`thread_rng`, `from_entropy`, `rand::random`),
//!   wall-clock reads (`SystemTime::now`, `Instant::now`) and iteration
//!   over unordered containers (`HashMap`/`HashSet`) in result-producing
//!   code silently break that contract.
//! - **unsafe-island** — every result crate is `#![forbid(unsafe_code)]`;
//!   the day a SIMD kernel justifies an exception, it must be a declared
//!   island module (`UNSAFE_ISLANDS`), not an `unsafe` that drifts in
//!   anywhere. Until an island is declared, any `unsafe` token fails.
//! - **panic-freedom** — a stray `unwrap()` in library code kills an entire
//!   fleet evaluation instead of failing one chip with a typed error.
//! - **numeric-safety** — `f64 as f32` narrowing and `==`/`!=` on floats in
//!   kernel/accumulation code are classic sources of silently divergent
//!   results across refactors.
//! - **hot-path-alloc** — layer `forward*`/`backward*` bodies run once per
//!   training iteration and are supposed to draw buffers from the
//!   `Workspace` arena; fresh `Tensor::zeros`/`.clone()`/`.to_vec()` there
//!   quietly reintroduces per-step heap churn.
//! - **artifact-io** — every result artifact (manifests, run logs, CSVs,
//!   tables, journals) must be written through the atomic temp-file+rename
//!   writer in `reduce_core::artifact`; a direct `fs::write`/`File::create`
//!   elsewhere can leave a torn artifact behind when a run is killed,
//!   which breaks the checkpoint/resume and cross-thread-diff guarantees.
//!
//! Escape hatch: a `// xtask:allow(<lint>): <reason>` comment on the same
//! line or the line above suppresses one lint there. The reason is
//! mandatory and must be substantive (≥ 10 characters); unused or
//! reason-less allows are themselves violations, so the hatch cannot rot.

use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::BTreeMap;

/// Every lint the engine can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// `thread_rng()`, `from_entropy()`, `rand::random` — seedless RNG.
    AmbientEntropy,
    /// `SystemTime::now()` / `Instant::now()` in result-producing code.
    WallClock,
    /// Iterating a `HashMap`/`HashSet` in result-producing code.
    UnorderedIter,
    /// Any `unsafe` token outside a declared unsafe-island module.
    UnsafeIsland,
    /// `.unwrap()` in non-test library code.
    Unwrap,
    /// `.expect(..)` in non-test library code.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Panic,
    /// Slice/array indexing `x[i]` (prefer `get`/iterators or justify).
    Index,
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// `expr as f32` where the source expression mentions `f64`.
    LossyFloatCast,
    /// `Tensor::zeros`/`ones`/`full`, `.clone()` or `.to_vec()` inside a
    /// layer `forward*`/`backward*` body (the per-iteration hot path).
    HotPathAlloc,
    /// `fs::write` / `File::create` outside the atomic artifact writer.
    ArtifactIo,
    /// An `xtask:allow` comment that suppressed nothing.
    UnusedAllow,
    /// An `xtask:allow` comment with a missing or trivial reason.
    BadAllow,
}

impl Lint {
    /// Stable kebab-case name, used in diagnostics, baseline keys and
    /// `xtask:allow(..)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Lint::AmbientEntropy => "ambient-entropy",
            Lint::WallClock => "wall-clock",
            Lint::UnorderedIter => "unordered-iter",
            Lint::UnsafeIsland => "unsafe-island",
            Lint::Unwrap => "unwrap",
            Lint::Expect => "expect",
            Lint::Panic => "panic",
            Lint::Index => "index",
            Lint::FloatEq => "float-eq",
            Lint::LossyFloatCast => "lossy-float-cast",
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::ArtifactIo => "artifact-io",
            Lint::UnusedAllow => "unused-allow",
            Lint::BadAllow => "bad-allow",
        }
    }

    /// The family a lint belongs to (grouping for docs and reports).
    pub fn family(self) -> &'static str {
        match self {
            Lint::AmbientEntropy | Lint::WallClock | Lint::UnorderedIter => "determinism",
            Lint::UnsafeIsland => "unsafe-island",
            Lint::Unwrap | Lint::Expect | Lint::Panic | Lint::Index => "panic-freedom",
            Lint::FloatEq | Lint::LossyFloatCast => "numeric-safety",
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::ArtifactIo => "artifact-io",
            Lint::UnusedAllow | Lint::BadAllow => "meta",
        }
    }

    /// All lints, in stable order (drives `from_name` and `--explain`).
    pub fn all() -> [Lint; 14] {
        [
            Lint::AmbientEntropy,
            Lint::WallClock,
            Lint::UnorderedIter,
            Lint::UnsafeIsland,
            Lint::Unwrap,
            Lint::Expect,
            Lint::Panic,
            Lint::Index,
            Lint::FloatEq,
            Lint::LossyFloatCast,
            Lint::HotPathAlloc,
            Lint::ArtifactIo,
            Lint::UnusedAllow,
            Lint::BadAllow,
        ]
    }

    /// The rule, rationale and fix pattern, for `--explain <lint>`.
    pub fn explain(self) -> (&'static str, &'static str, &'static str) {
        match self {
            Lint::AmbientEntropy => (
                "no `thread_rng()`, `from_entropy()` or `rand::random` in result code",
                "a resilience table measured from ambient entropy cannot be reproduced, so \
                 every later per-chip selection decision built on it is untrustworthy",
                "thread an explicit `u64` seed (`SmallRng::seed_from_u64`) from the config",
            ),
            Lint::WallClock => (
                "no `Instant::now()` / `SystemTime::now()` in result code",
                "wall-clock reads make artifacts differ across runs and thread counts, \
                 breaking the byte-identical resume and cross-thread-diff guarantees",
                "take the time as a parameter, or go through `telemetry::Stopwatch` (the \
                 sanctioned island) for timing that is redacted from result artifacts",
            ),
            Lint::UnorderedIter => (
                "no iteration over `HashMap`/`HashSet` in result code",
                "their iteration order is unspecified and can differ between runs and \
                 toolchains, which silently reorders result artifacts",
                "use `BTreeMap`/`BTreeSet`, or collect and sort before iterating",
            ),
            Lint::UnsafeIsland => (
                "no `unsafe` outside a declared island module (`UNSAFE_ISLANDS` in xtask)",
                "every result crate is `#![forbid(unsafe_code)]`; if a SIMD kernel ever \
                 justifies an island, it must be a declared, reviewable module — not an \
                 `unsafe` that drifts in anywhere",
                "keep code safe, or add the module to `UNSAFE_ISLANDS` with review",
            ),
            Lint::Unwrap => (
                "no `.unwrap()` in library code",
                "one poisoned chip would kill an entire fleet evaluation instead of \
                 failing soft with a typed error",
                "return the crate's typed `Error` via `?` / `ok_or_else`",
            ),
            Lint::Expect => (
                "no `.expect(..)` in library code",
                "same failure mode as `unwrap`: it aborts the whole run",
                "return the crate's typed `Error` via `?` / `ok_or_else`",
            ),
            Lint::Panic => (
                "no `panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code",
                "panics abort the caller and break job containment",
                "return a typed `Error`; for contained chaos tests use `xtask:allow(panic)`",
            ),
            Lint::Index => (
                "no bare slice/array indexing in library code",
                "`x[i]` panics out of bounds, killing the run instead of one job",
                "prefer `get`/iterators, or justify with `xtask:allow(index)`",
            ),
            Lint::FloatEq => (
                "no `==`/`!=` against float literals",
                "exact bit comparison diverges silently across refactors and FMA folds",
                "compare with an epsilon, or justify exact-zero semantics with an allow",
            ),
            Lint::LossyFloatCast => (
                "no `f64 as f32` narrowing in kernel code",
                "silent precision loss makes results depend on where the cast sits",
                "keep the accumulation in one width end to end",
            ),
            Lint::HotPathAlloc => (
                "no fresh allocations in layer `forward*`/`backward*` bodies",
                "per-iteration heap churn undoes the workspace-arena optimisation",
                "take buffers from the `Workspace` arena (`ws.take`); O(1) CoW handle \
                 clones are fine but must say so via `xtask:allow(hot-path-alloc)`",
            ),
            Lint::ArtifactIo => (
                "no `fs::write`/`File::create` outside `reduce_core::artifact`",
                "a direct write can be interrupted half way and leave a torn artifact, \
                 breaking checkpoint/resume",
                "route writes through `artifact::write_atomic` (temp file + rename)",
            ),
            Lint::UnusedAllow => (
                "every `xtask:allow` must suppress something",
                "stale allows rot into blanket permissions",
                "delete the comment, or move it next to the code it justifies",
            ),
            Lint::BadAllow => (
                "every `xtask:allow` needs a known lint name and a substantive reason",
                "an allow without a reason is a decision nobody can audit",
                "write `// xtask:allow(<lint>): <why this is sound>` (≥ 10 chars)",
            ),
        }
    }

    /// Parses a lint name as written in an `xtask:allow(..)` comment.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::all().into_iter().find(|l| l.name() == name)
    }
}

/// Hot-function prefixes for layer implementations: the per-iteration
/// `forward*` / `backward*` bodies.
pub const LAYER_HOT_PREFIXES: &[&str] = &["forward", "backward"];

/// Hot-function prefixes for the GEMM kernel directory: the drivers
/// (`gemm*`), the panel packers (`pack*`) and the microkernel
/// (`micro*`) all run inside the innermost matmul loops.
pub const GEMM_HOT_PREFIXES: &[&str] = &["gemm", "pack", "micro"];

/// Which lint families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Enforce the determinism family.
    pub determinism: bool,
    /// Enforce the panic-freedom family.
    pub panic_freedom: bool,
    /// Enforce the numeric-safety family.
    pub numeric: bool,
    /// Function-name prefixes whose bodies the hot-path-alloc family
    /// covers (empty slice = family off for this file). Layer files use
    /// [`LAYER_HOT_PREFIXES`]; the GEMM kernel directory uses
    /// [`GEMM_HOT_PREFIXES`].
    pub hot_path: &'static [&'static str],
    /// Enforce the artifact-io family (atomic artifact writes only).
    pub artifact_io: bool,
    /// Enforce the unsafe-island gate (no `unsafe` outside islands).
    pub unsafe_gate: bool,
}

impl Scope {
    /// Everything on — used by the fixture tests.
    pub fn all() -> Self {
        Scope {
            determinism: true,
            panic_freedom: true,
            numeric: true,
            hot_path: LAYER_HOT_PREFIXES,
            artifact_io: true,
            unsafe_gate: true,
        }
    }

    /// Nothing on.
    pub fn none() -> Self {
        Scope {
            determinism: false,
            panic_freedom: false,
            numeric: false,
            hot_path: &[],
            artifact_io: false,
            unsafe_gate: false,
        }
    }

    fn any(self) -> bool {
        self.determinism
            || self.panic_freedom
            || self.numeric
            || !self.hot_path.is_empty()
            || self.artifact_io
            || self.unsafe_gate
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-oriented message (what + why).
    pub message: String,
}

/// Lints one file's source under the given scope.
///
/// `#[cfg(test)]` items, `#[test]` functions, comments, strings and doc
/// text are exempt. `xtask:allow` comments suppress individual findings;
/// unused or unjustified allows are reported through the meta lints.
pub fn lint_source(src: &str, scope: Scope) -> Vec<Violation> {
    if !scope.any() {
        return Vec::new();
    }
    let tokens = tokenize(src);
    let allows = collect_allows(&tokens);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let exempt = test_exempt_lines(&code);

    let mut raw = Vec::new();
    if scope.determinism {
        determinism_pass(&code, &mut raw);
        unordered_iter_pass(&code, &mut raw);
    }
    if scope.unsafe_gate {
        unsafe_island_pass(&code, &mut raw);
    }
    if scope.panic_freedom {
        panic_pass(&code, &mut raw);
    }
    if scope.numeric {
        numeric_pass(&code, &mut raw);
    }
    if !scope.hot_path.is_empty() {
        hot_path_pass(&code, scope.hot_path, &mut raw);
    }
    if scope.artifact_io {
        artifact_io_pass(&code, &mut raw);
    }
    raw.retain(|v| !exempt.contains(&v.line));

    apply_allows(raw, allows)
}

// ---------------------------------------------------------------------------
// Escape-hatch comments
// ---------------------------------------------------------------------------

struct Allow {
    lint: Option<Lint>,
    reason_ok: bool,
    line: u32,
    col: u32,
    used: bool,
    text: String,
}

fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        // A real allow is a dedicated comment: the marker must start the
        // comment content (after `/`, `!` and whitespace). Prose that
        // merely *mentions* the syntax mid-sentence or in backticks
        // (docs, this very file) is not an allow attempt.
        let content = t.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = content.strip_prefix("xtask:allow") else {
            continue;
        };
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        let (lint, reason_ok) = parse_allow(rest);
        allows.push(Allow {
            lint,
            reason_ok,
            line: t.line,
            col: t.col,
            used: false,
            text: t.text.trim_start_matches('/').trim().to_string(),
        });
    }
    allows
}

/// Parses `"(lint-name): reason"`; returns the lint (if recognised) and
/// whether the reason is substantive.
fn parse_allow(rest: &str) -> (Option<Lint>, bool) {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return (None, false);
    };
    let Some(close) = inner.find(')') else {
        return (None, false);
    };
    let lint = Lint::from_name(inner[..close].trim());
    let after = inner[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    (lint, reason.len() >= 10)
}

fn apply_allows(raw: Vec<Violation>, mut allows: Vec<Allow>) -> Vec<Violation> {
    let mut out = Vec::new();
    for v in raw {
        let slot = allows
            .iter_mut()
            .find(|a| a.lint == Some(v.lint) && (a.line == v.line || a.line + 1 == v.line));
        match slot {
            Some(a) if a.reason_ok => a.used = true,
            Some(a) => {
                // Mark used so it is not *also* reported as unused; the
                // missing justification is the actionable finding.
                a.used = true;
                out.push(v);
            }
            None => out.push(v),
        }
    }
    for a in &allows {
        if a.lint.is_some() && a.used && !a.reason_ok {
            out.push(Violation {
                lint: Lint::BadAllow,
                line: a.line,
                col: a.col,
                message: format!(
                    "`{}` needs a substantive reason after the colon (≥ 10 chars)",
                    a.text
                ),
            });
        }
        if a.lint.is_none() {
            out.push(Violation {
                lint: Lint::BadAllow,
                line: a.line,
                col: a.col,
                message: format!("`{}` does not name a known lint", a.text),
            });
        } else if !a.used {
            out.push(Violation {
                lint: Lint::UnusedAllow,
                line: a.line,
                col: a.col,
                message: format!("`{}` suppresses nothing on this or the next line", a.text),
            });
        }
    }
    out.sort_by_key(|v| (v.line, v.col));
    out
}

// ---------------------------------------------------------------------------
// Test-code exemption
// ---------------------------------------------------------------------------

/// Returns the set of lines that belong to `#[cfg(test)]` items or
/// `#[test]` functions, via attribute detection + brace tracking.
///
/// Public because the item parser ([`crate::parser`]) reuses the exact
/// same exemption to keep the effect analysis and the token lints in
/// agreement about what counts as test code.
pub fn test_exempt_lines(code: &[&Token]) -> std::collections::HashSet<u32> {
    let mut exempt = std::collections::HashSet::new();
    let mut depth: i32 = 0;
    let mut exempt_until: Vec<i32> = Vec::new(); // stack of depths
    let mut pending_test_attr = false;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if !exempt_until.is_empty() {
            exempt.insert(t.line);
        }
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "#") => {
                // `#![...]` inner attributes never start a test item.
                let inner = matches!(code.get(i + 1), Some(n) if n.text == "!");
                let open = if inner { i + 2 } else { i + 1 };
                if matches!(code.get(open), Some(n) if n.text == "[") {
                    let close = matching_bracket(code, open);
                    if !inner && attr_marks_test(&code[open + 1..close]) {
                        pending_test_attr = true;
                        // The attribute's own lines are exempt too.
                        for tok in &code[i..=close.min(code.len() - 1)] {
                            exempt.insert(tok.line);
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
            (TokenKind::Punct, "{") => {
                depth += 1;
                if pending_test_attr {
                    pending_test_attr = false;
                    exempt_until.push(depth);
                    exempt.insert(t.line);
                }
            }
            (TokenKind::Punct, "}") => {
                if exempt_until.last() == Some(&depth) {
                    exempt_until.pop();
                    exempt.insert(t.line);
                }
                depth -= 1;
            }
            // `#[cfg(test)] use foo;` — attribute applied to a braceless
            // item; nothing to exempt beyond it.
            (TokenKind::Punct, ";") if pending_test_attr && exempt_until.is_empty() => {
                pending_test_attr = false;
            }
            _ => {}
        }
        if pending_test_attr {
            exempt.insert(t.line);
        }
        i += 1;
    }
    exempt
}

/// Whether an attribute body (tokens between `[` and `]`) marks test code:
/// `test`, `cfg(test)`, `cfg(any(test, ...))`, `cfg(all(test, ...))`.
fn attr_marks_test(body: &[&Token]) -> bool {
    match body.first().map(|t| t.text.as_str()) {
        Some("test") if body.len() == 1 => true,
        Some("cfg") => body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "test"),
        _ => false,
    }
}

fn matching_bracket(code: &[&Token], open: usize) -> usize {
    let (open_ch, close_ch) = match code[open].text.as_str() {
        "[" => ("[", "]"),
        "(" => ("(", ")"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    code.len() - 1
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

fn determinism_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" | "from_entropy" => out.push(Violation {
                lint: Lint::AmbientEntropy,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}()` draws ambient entropy; thread an explicit `u64` seed instead \
                     (`SmallRng::seed_from_u64`)",
                    t.text
                ),
            }),
            "random" if path_prefix_is(code, i, "rand") => out.push(Violation {
                lint: Lint::AmbientEntropy,
                line: t.line,
                col: t.col,
                message: "`rand::random` draws ambient entropy; thread an explicit `u64` seed \
                          instead"
                    .to_string(),
            }),
            "SystemTime" | "Instant" if path_suffix_is(code, i, "now") => out.push(Violation {
                lint: Lint::WallClock,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}::now()` makes results depend on the wall clock; take the time (or \
                         a seed) as a parameter",
                    t.text
                ),
            }),
            _ => {}
        }
    }
}

/// Method names whose receiver being a `HashMap`/`HashSet` means the
/// call observes (or depends on) the container's unspecified order.
const UNORDERED_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Finds `HashMap`/`HashSet` iteration sites in a token slice.
///
/// Heuristic, deliberately shared between the token lint and the effect
/// seeder: a name is *unordered-bound* when a `let` statement binding it
/// mentions `HashMap`/`HashSet` before its terminating `;`, or when a
/// `name: ..HashMap..` parameter appears in `sig`. A site is reported
/// when an unordered-bound name is iterated — `name.iter()`-family
/// calls, or `for .. in [&[mut]] name {`. Field accesses and opaque
/// return types are out of reach at token level; the call-graph layer
/// is what makes the under-approximation acceptable (helpers that
/// iterate are still caught at their own definition site).
///
/// Returns `(line, col, description)` triples.
pub fn unordered_iter_sites(sig: &[&Token], body: &[&Token]) -> Vec<(u32, u32, String)> {
    let mut bound: Vec<String> = Vec::new();
    // Parameter bindings: `name : .. HashMap ..` up to the next `,` or
    // closing paren of the type span.
    let mut k = 0usize;
    while k < sig.len() {
        let t = sig[k];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, _)
                if sig.get(k + 1).is_some_and(|n| n.text == ":")
                    && sig.get(k + 2).is_some_and(|n| n.text != ":") =>
            {
                // Scan the type span for the unordered containers.
                let mut j = k + 2;
                let mut d = 0i32;
                while j < sig.len() {
                    let u = sig[j];
                    match (u.kind, u.text.as_str()) {
                        (TokenKind::Punct, "(" | "[" | "<") => d += 1,
                        (TokenKind::Punct, ")" | "]" | ">") if d > 0 => d -= 1,
                        (TokenKind::Punct, "," | ")") if d == 0 => break,
                        (TokenKind::Ident, "HashMap" | "HashSet") => {
                            bound.push(t.text.clone());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Local bindings: `let [mut] name .. HashMap ..;`.
    let mut i = 0usize;
    while i < body.len() {
        let t = body[i];
        if t.kind == TokenKind::Ident && t.text == "let" {
            let mut n = i + 1;
            if body.get(n).is_some_and(|u| u.text == "mut") {
                n += 1;
            }
            if let Some(name) = body.get(n).filter(|u| u.kind == TokenKind::Ident) {
                let mut j = n + 1;
                let mut d = 0i32;
                while j < body.len() {
                    let u = body[j];
                    match (u.kind, u.text.as_str()) {
                        (TokenKind::Punct, "(" | "[" | "{") => d += 1,
                        (TokenKind::Punct, ")" | "]" | "}") => d -= 1,
                        (TokenKind::Punct, ";") if d <= 0 => break,
                        (TokenKind::Ident, "HashMap" | "HashSet") => {
                            bound.push(name.text.clone());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    if bound.is_empty() {
        return Vec::new();
    }

    let mut sites = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name.iter()` / `name.keys()` / ... on an unordered-bound name.
        if bound.contains(&t.text)
            && body.get(i + 1).is_some_and(|n| n.text == ".")
            && body.get(i + 3).is_some_and(|n| n.text == "(")
        {
            if let Some(m) = body.get(i + 2) {
                if UNORDERED_ITER_METHODS.contains(&m.text.as_str()) {
                    sites.push((
                        t.line,
                        t.col,
                        format!("`{}.{}()` iterates a HashMap/HashSet", t.text, m.text),
                    ));
                }
            }
        }
        // `for x in [&[mut]] name {` — direct IntoIterator use.
        if t.text == "in" {
            let mut n = i + 1;
            while body
                .get(n)
                .is_some_and(|u| u.text == "&" || u.text == "mut")
            {
                n += 1;
            }
            if let Some(name) = body.get(n).filter(|u| u.kind == TokenKind::Ident) {
                if bound.contains(&name.text) && body.get(n + 1).is_some_and(|u| u.text == "{") {
                    sites.push((
                        name.line,
                        name.col,
                        format!("`for .. in {}` iterates a HashMap/HashSet", name.text),
                    ));
                }
            }
        }
    }
    sites
}

/// The `unordered-iter` lint: flags HashMap/HashSet iteration anywhere
/// in the file (file-wide binding tracking, no signature context).
fn unordered_iter_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for (line, col, what) in unordered_iter_sites(&[], code) {
        out.push(Violation {
            lint: Lint::UnorderedIter,
            line,
            col,
            message: format!(
                "{what}; iteration order is unspecified and can reorder results — use \
                 `BTreeMap`/`BTreeSet` or sort before iterating"
            ),
        });
    }
}

/// The `unsafe-island` gate: any `unsafe` token in a file outside the
/// declared island modules (scope decides which files the pass sees).
fn unsafe_island_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for t in code {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            out.push(Violation {
                lint: Lint::UnsafeIsland,
                line: t.line,
                col: t.col,
                message: "`unsafe` outside a declared island module; add the module to \
                          `UNSAFE_ISLANDS` (crates/xtask/src/lib.rs) with review, or keep \
                          the code safe"
                    .to_string(),
            });
        }
    }
}

/// True when `code[i]` is preceded by `prefix ::`.
fn path_prefix_is(code: &[&Token], i: usize, prefix: &str) -> bool {
    i >= 3 && code[i - 1].text == ":" && code[i - 2].text == ":" && code[i - 3].text == prefix
}

/// True when `code[i]` is followed by `:: suffix`.
fn path_suffix_is(code: &[&Token], i: usize, suffix: &str) -> bool {
    code.get(i + 1).is_some_and(|t| t.text == ":")
        && code.get(i + 2).is_some_and(|t| t.text == ":")
        && code.get(i + 3).is_some_and(|t| t.text == suffix)
}

// ---------------------------------------------------------------------------
// Panic-freedom
// ---------------------------------------------------------------------------

fn panic_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "unwrap" | "expect")
                if i > 0
                    && code[i - 1].text == "."
                    && code.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                let lint = if t.text == "unwrap" {
                    Lint::Unwrap
                } else {
                    Lint::Expect
                };
                out.push(Violation {
                    lint,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`.{}()` panics in library code; return the crate's typed `Error` \
                         (`?`, `ok_or_else`) so fleet runs fail softly",
                        t.text
                    ),
                });
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if code.get(i + 1).is_some_and(|n| n.text == "!")
                    && (i == 0 || code[i - 1].text != ".") =>
            {
                out.push(Violation {
                    lint: Lint::Panic,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}!` aborts the caller; return a typed `Error` instead",
                        t.text
                    ),
                });
            }
            (TokenKind::Punct, "[") if i > 0 && is_index_base(code[i - 1]) => {
                // `x[..]` / `f()[..]` / `m[i][j]` — but not attributes
                // (`#[...]`), macro brackets (`vec![..]`), array types or
                // array literals (preceded by punctuation).
                out.push(Violation {
                    lint: Lint::Index,
                    line: t.line,
                    col: t.col,
                    message: "slice indexing panics out-of-bounds; prefer `get`/iterators, or \
                              justify with `xtask:allow(index)`"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

/// Whether the token before `[` makes it an *indexing* bracket.
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !matches!(
            prev.text.as_str(),
            // Keywords that can directly precede an array literal/pattern
            // or a slice type (`impl Trait for [T]`).
            "return"
                | "break"
                | "in"
                | "as"
                | "mut"
                | "ref"
                | "else"
                | "match"
                | "if"
                | "move"
                | "for"
        ),
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Hot-path allocation hygiene
// ---------------------------------------------------------------------------

/// Flags fresh allocations inside hot function bodies — functions whose
/// names start with one of the scope's `hot_path` prefixes (layer
/// `forward*`/`backward*` bodies run once per training iteration; the
/// GEMM drivers/packers/microkernels run inside the innermost matmul
/// loops). Steady-state epochs are supposed to run allocation-free out of
/// the `Workspace` arena; a stray `Tensor::zeros` or buffer copy there
/// silently reintroduces per-step heap traffic. O(1) copy-on-write handle
/// clones are fine but must say so via the allow hatch, so every
/// remaining `clone()` in a hot path is a documented decision.
fn hot_path_pass(code: &[&Token], prefixes: &[&str], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        let is_hot_fn = t.kind == TokenKind::Ident
            && t.text == "fn"
            && code.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && prefixes.iter().any(|p| n.text.starts_with(p))
            });
        if !is_hot_fn {
            i += 1;
            continue;
        }
        // Skip the signature: the body opens at the first `{` outside
        // parens/brackets; a `;` there instead means a bodyless trait
        // method declaration.
        let mut j = i + 2;
        let mut nesting = 0i32;
        while j < code.len() {
            let u = code[j];
            if u.kind == TokenKind::Punct {
                match u.text.as_str() {
                    "(" | "[" => nesting += 1,
                    ")" | "]" => nesting -= 1,
                    "{" | ";" if nesting == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= code.len() || code[j].text == ";" {
            i = j + 1;
            continue;
        }
        let close = matching_bracket(code, j);
        scan_hot_body(&code[j..=close], out);
        i = close + 1;
    }
}

/// Reports allocation/copy calls within one hot function body.
fn scan_hot_body(body: &[&Token], out: &mut Vec<Violation>) {
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "new" | "with_capacity" if path_prefix_is(body, k, "Vec") => out.push(Violation {
                lint: Lint::HotPathAlloc,
                line: t.line,
                col: t.col,
                message: format!(
                    "`Vec::{}` allocates every iteration in a layer hot path; reuse a \
                     scratch buffer or the `Workspace` arena, or justify with \
                     `xtask:allow(hot-path-alloc)`",
                    t.text
                ),
            }),
            // `vec![…]` / `vec!(…)`: the macro bang plus an open delimiter —
            // this cannot be the rare `vec != …` (the `!` there is fused
            // into `!=`, never followed by a delimiter).
            "vec"
                if body.get(k + 1).is_some_and(|n| n.text == "!")
                    && body
                        .get(k + 2)
                        .is_some_and(|n| matches!(n.text.as_str(), "[" | "(" | "{")) =>
            {
                out.push(Violation {
                    lint: Lint::HotPathAlloc,
                    line: t.line,
                    col: t.col,
                    message: "`vec![…]` allocates every iteration in a layer hot path; reuse a \
                              scratch buffer or the `Workspace` arena, or justify with \
                              `xtask:allow(hot-path-alloc)`"
                        .to_string(),
                })
            }
            "zeros" | "ones" | "full" if path_prefix_is(body, k, "Tensor") => out.push(Violation {
                lint: Lint::HotPathAlloc,
                line: t.line,
                col: t.col,
                message: format!(
                    "`Tensor::{}` allocates every iteration in a layer hot path; take the \
                     buffer from the `Workspace` arena (`ws.take`) or justify with \
                     `xtask:allow(hot-path-alloc)`",
                    t.text
                ),
            }),
            "clone" | "to_vec"
                if k > 0
                    && body[k - 1].text == "."
                    && body.get(k + 1).is_some_and(|n| n.text == "(")
                    // `.dims().to_vec()` copies a handful of `usize` shape
                    // entries, not a data buffer — not worth an allow each.
                    && !(k >= 4 && body[k - 4].text == "dims" && body[k - 2].text == ")") =>
            {
                out.push(Violation {
                    lint: Lint::HotPathAlloc,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`.{}()` in a layer hot path copies a buffer every iteration; reuse \
                         workspace storage, or justify with `xtask:allow(hot-path-alloc)` \
                         (O(1) copy-on-write handle clones qualify)",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Artifact-write hygiene
// ---------------------------------------------------------------------------

/// Flags direct artifact writes — `fs::write` (incl. `std::fs::write`),
/// `File::create`, `fs::rename`, and raw file syncs (`.sync_all()` /
/// `.sync_data()`) — outside `reduce_core::artifact`, the one sanctioned
/// temp-file+rename call site. A direct write can be interrupted half way
/// and leave a torn manifest/run-log/CSV/journal behind; a raw rename or
/// fsync bypasses the write→sync→rename→dir-sync durability ordering the
/// atomic writer enforces (and the IO-fault injection seam that tests it),
/// breaking the crash-safety contract that checkpoint/resume and the CI
/// artifact diffs rely on.
fn artifact_io_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "write" if path_prefix_is(code, i, "fs") => out.push(Violation {
                lint: Lint::ArtifactIo,
                line: t.line,
                col: t.col,
                message: "`fs::write` is not crash-safe; route artifact writes through \
                          `reduce_core::artifact::write_atomic` (temp file + rename), or \
                          justify with `xtask:allow(artifact-io)`"
                    .to_string(),
            }),
            "create" if path_prefix_is(code, i, "File") => out.push(Violation {
                lint: Lint::ArtifactIo,
                line: t.line,
                col: t.col,
                message: "`File::create` truncates in place and is not crash-safe; route \
                          artifact writes through `reduce_core::artifact::write_atomic` \
                          (temp file + rename), or justify with `xtask:allow(artifact-io)`"
                    .to_string(),
            }),
            "rename" if path_prefix_is(code, i, "fs") => out.push(Violation {
                lint: Lint::ArtifactIo,
                line: t.line,
                col: t.col,
                message: "`fs::rename` outside the atomic writer publishes data that was \
                          never fsynced; route artifact writes through \
                          `reduce_core::artifact::write_atomic` (which orders \
                          write→sync→rename→dir-sync), or justify with \
                          `xtask:allow(artifact-io)`"
                    .to_string(),
            }),
            "sync_all" | "sync_data"
                if i > 0
                    && code[i - 1].text == "."
                    && code.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                out.push(Violation {
                    lint: Lint::ArtifactIo,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "raw `.{}()` bypasses the atomic writer's durability ordering and \
                         its IO-fault injection seam; route artifact writes through \
                         `reduce_core::artifact::write_atomic`, or justify with \
                         `xtask:allow(artifact-io)`",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Numeric safety
// ---------------------------------------------------------------------------

fn numeric_pass(code: &[&Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        // `==` / `!=` with a float-literal operand. `==` is two adjacent
        // `=` puncts (its second `=` cannot re-match: the token after it
        // is an operand); `!=` is `!` + `=` adjacent. Compound operators
        // (`<=`, `+=`, `>>=`) put their `=` last, so neither shape
        // matches them.
        let op = if t.kind != TokenKind::Punct {
            None
        } else if t.text == "="
            && code
                .get(i + 1)
                .is_some_and(|n| n.text == "=" && n.offset == t.offset + 1)
        {
            Some("==")
        } else if t.text == "!"
            && code
                .get(i + 1)
                .is_some_and(|n| n.text == "=" && n.offset == t.offset + 1)
        {
            Some("!=")
        } else {
            None
        };
        if let Some(op) = op {
            let float_lhs = i > 0 && code[i - 1].kind == TokenKind::Float;
            // Allow a unary minus before the rhs literal.
            let j = i + 2 + usize::from(code.get(i + 2).is_some_and(|n| n.text == "-"));
            let float_rhs = code.get(j).is_some_and(|n| n.kind == TokenKind::Float);
            if float_lhs || float_rhs {
                out.push(Violation {
                    lint: Lint::FloatEq,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{op}` on floats is exact bit comparison; use an epsilon (or \
                         justify the exact-zero semantics with `xtask:allow(float-eq)`)"
                    ),
                });
            }
        }
        // `expr as f32` where expr mentions f64.
        if t.kind == TokenKind::Ident
            && t.text == "as"
            && code.get(i + 1).is_some_and(|n| n.text == "f32")
            && i > 0
            && cast_source_mentions_f64(code, i)
        {
            out.push(Violation {
                lint: Lint::LossyFloatCast,
                line: t.line,
                col: t.col,
                message: "`f64 as f32` silently drops precision; keep the accumulation in one \
                          width or justify with `xtask:allow(lossy-float-cast)`"
                    .to_string(),
            });
        }
    }
}

/// Walks the postfix expression before `as` (idents, field/method chains,
/// matched parens/brackets) and reports whether it mentions `f64`.
fn cast_source_mentions_f64(code: &[&Token], as_idx: usize) -> bool {
    let mut j = as_idx as isize - 1;
    let lower = as_idx.saturating_sub(64) as isize; // bounded walk
    while j >= lower {
        let t = code[j as usize];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "f64") => return true,
            (TokenKind::Ident, name) if name.contains("f64") => return true,
            (TokenKind::Float, text) if text.ends_with("f64") => return true,
            (TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Str, _) => j -= 1,
            (TokenKind::Punct, ")" | "]") => {
                // Jump to the matching opener.
                let (close, open) = if t.text == ")" {
                    (")", "(")
                } else {
                    ("]", "[")
                };
                let mut depth = 0i32;
                while j >= 0 {
                    let u = code[j as usize];
                    if u.kind == TokenKind::Punct {
                        if u.text == close {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    } else if (u.kind == TokenKind::Ident && u.text.contains("f64"))
                        || (u.kind == TokenKind::Float && u.text.ends_with("f64"))
                    {
                        return true;
                    }
                    j -= 1;
                }
                j -= 1;
            }
            (TokenKind::Punct, "." | ":") => j -= 1,
            _ => break,
        }
    }
    false
}

/// Aggregates violations into `(lint-name -> count)` for baseline keys.
///
/// Returns a `BTreeMap` so everything downstream — report rendering,
/// baseline emission, JSON output — inherits a deterministic iteration
/// order. (The linter enforces `unordered-iter` on the workspace; this
/// is it holding itself to the same rule.)
pub fn count_by_lint(violations: &[Violation]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry(v.lint.name().to_string()).or_insert(0u64) += 1;
    }
    counts
}
