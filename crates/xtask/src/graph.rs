//! Workspace call graph + transitive effect inference.
//!
//! This is the pass `cargo xtask graph` runs: parse every `crates/*/src`
//! file ([`crate::parser`]), build a call graph keyed by
//! `crate::module::fn`, seed each node with its token-level effects
//! ([`crate::effects`]), propagate effects transitively to a fixpoint,
//! and enforce that every *parallel job root* infers effect-free.
//!
//! **Roots.** The deterministic-executor contract says a job body must be
//! a pure function of `(inputs, seed)`. The roots are therefore the
//! closures passed to `exec::parallel_map` / `parallel_map_traced` /
//! `parallel_map_resilient` (which includes retry bodies — a retry
//! re-runs the same closure — and the `on_sealed` checkpoint hooks),
//! plus the named journal-replay functions (`EXTRA_ROOT_SUFFIXES`): a
//! resumed run must reconstruct byte-identical state from the journal.
//!
//! **Islands.** Two sanctioned exceptions subtract their effect at the
//! island boundary, so callers observe them as pure: the
//! `telemetry::Stopwatch` wall-clock read (whose output is redacted
//! from result artifacts) and `reduce_core::artifact` (the atomic
//! temp-file+rename writer — the *only* way results reach disk). The
//! unsafe-island list is shared with the `unsafe-island` token lint and
//! is currently empty.
//!
//! **Resolution is best-effort and over-approximate by design.** Bare
//! calls resolve through the local module, `use` imports, then any
//! same-crate function of that name; method calls link to *every*
//! workspace method with that name; qualified paths suffix-match.
//! Over-linking can only create false positives (an effect reported
//! where none flows), never false negatives — the safe direction for a
//! gate. Calls into `std` or through generic callables simply do not
//! resolve and contribute nothing. DESIGN.md §11 documents the limits.

use crate::baseline::{push_json_string, Baseline};
use crate::effects::{
    collect_effect_allows, seed_effects, Effect, EffectAllow, EffectSet, Seed, ALL_EFFECTS,
};
use crate::lexer::{Token, TokenKind};
use crate::parser::{matching_brace, parse_file, ParsedFile};
use crate::{workspace_rs_files, UNSAFE_ISLANDS};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Call names whose closure arguments are parallel job roots.
pub const ROOT_MARKERS: [&str; 4] = [
    "parallel_map",
    "parallel_map_traced",
    "parallel_map_resilient",
    "run_job_resilient",
];

/// Function-id suffixes rooted directly: the resumable journal replay
/// path. `Checkpoint::resume`'s raw file read is intake, not replay; the
/// replay contract starts where parsed records are handed back.
pub const EXTRA_ROOT_SUFFIXES: [&str; 3] = [
    "journal::Checkpoint::records",
    "journal::parse_record",
    "journal::render_record",
];

/// Sanctioned islands and root configuration for one analysis run.
#[derive(Debug, Clone)]
pub struct EffectPolicy {
    /// Files whose functions never export `io` (the atomic writer).
    pub io_island_files: Vec<String>,
    /// Function-id prefixes that never export `wall-clock`.
    pub wallclock_island_prefixes: Vec<String>,
    /// Path prefixes that never export `unsafe` (shared with the lint).
    pub unsafe_island_prefixes: Vec<String>,
    /// Function-id suffixes treated as roots in addition to closures.
    pub extra_root_suffixes: Vec<String>,
}

impl Default for EffectPolicy {
    fn default() -> Self {
        EffectPolicy {
            io_island_files: vec!["crates/core/src/artifact.rs".to_string()],
            wallclock_island_prefixes: vec!["reduce_core::telemetry::Stopwatch::".to_string()],
            unsafe_island_prefixes: UNSAFE_ISLANDS.iter().map(|s| s.to_string()).collect(),
            extra_root_suffixes: EXTRA_ROOT_SUFFIXES.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// One function (or job closure) in the call graph.
#[derive(Debug)]
pub struct Node {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword / closure opening `|`.
    pub line: u32,
    /// Own effects after `xtask:effect` allows and island subtraction.
    pub own: EffectSet,
    /// Own + transitive effects (the fixpoint result).
    pub effective: EffectSet,
    /// Resolved callees (node ids).
    pub calls: BTreeSet<String>,
    /// Own effect seeds (pre-island, post-allow), for reporting.
    pub seeds: Vec<Seed>,
    /// Whether this node is an enforcement root.
    pub is_root: bool,
    /// Per-effect witness: the callee the effect arrived through
    /// (`None` = a seed in this very body).
    pub via: BTreeMap<&'static str, Option<String>>,
}

/// One enforced-root violation, with its witness call chain.
#[derive(Debug)]
pub struct EffectViolation {
    /// The root node id.
    pub root: String,
    /// Which effect leaked into the root.
    pub effect: Effect,
    /// Call chain from the root to the seeding function (node ids).
    pub chain: Vec<String>,
    /// The concrete seed at the end of the chain.
    pub seed: Seed,
    /// File of the seeding function.
    pub seed_file: String,
}

impl EffectViolation {
    /// `root → helper → Instant::now (file:line)` rendering.
    pub fn render_chain(&self) -> String {
        let mut out = String::new();
        for id in &self.chain {
            out.push_str(id);
            out.push_str(" → ");
        }
        out.push_str(&format!(
            "{} ({}:{})",
            self.seed.what, self.seed_file, self.seed.line
        ));
        out
    }
}

/// A problem with an `xtask:effect` allow comment (bad name, missing
/// reason, or sanctioning nothing). Always hard errors — the hatch must
/// not rot.
#[derive(Debug)]
pub struct AllowFinding {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// The full analysis result.
#[derive(Debug)]
pub struct Analysis {
    /// All nodes, keyed by id, sorted.
    pub nodes: BTreeMap<String, Node>,
    /// Root violations, sorted by (root, effect).
    pub violations: Vec<EffectViolation>,
    /// Defective `xtask:effect` comments.
    pub allow_findings: Vec<AllowFinding>,
}

/// Runs the whole pass over `root`. Only `crates/*/src/**` files take
/// part; tests, fixtures and vendored code are invisible to the graph.
pub fn analyze_workspace(root: &Path, policy: &EffectPolicy) -> std::io::Result<Analysis> {
    let mut files: Vec<(String, ParsedFile)> = Vec::new();
    for rel in workspace_rs_files(root)? {
        // Exactly `crates/<name>/src/**` — not `crates/<name>/tests/…`
        // and not fixture mini-workspaces nested under a tests tree.
        if !crate::is_crate_src(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, parse_file(&src)));
    }
    let crate_names = crate_names(root, &files);
    Ok(analyze_parsed(&files, &crate_names, policy))
}

/// `crates/<dir>` → crate module name, from each `Cargo.toml`'s
/// `[package] name` with `-` mapped to `_`; falls back to the directory
/// name so fixture workspaces need no manifests.
fn crate_names(root: &Path, files: &[(String, ParsedFile)]) -> BTreeMap<String, String> {
    let mut names = BTreeMap::new();
    for (rel, _) in files {
        let Some(dir) = rel.split('/').nth(1) else {
            continue;
        };
        if names.contains_key(dir) {
            continue;
        }
        let manifest = root.join("crates").join(dir).join("Cargo.toml");
        let name = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|text| {
                text.lines().find_map(|l| {
                    let l = l.trim();
                    l.strip_prefix("name")
                        .map(|r| r.trim_start().trim_start_matches('='))
                        .map(|r| r.trim().trim_matches('"').replace('-', "_"))
                })
            })
            .unwrap_or_else(|| dir.replace('-', "_"));
        names.insert(dir.to_string(), name);
    }
    names
}

/// The in-file half of a node, before cross-file resolution.
struct PendingNode {
    id: String,
    file_idx: usize,
    line: u32,
    /// Code-token range of the signature (empty for closures' headers).
    sig: (usize, usize),
    /// Code-token range of the body, inclusive.
    body: (usize, usize),
    owner: Option<String>,
    is_root: bool,
}

/// Core analysis over already-parsed files (unit tests drive this
/// directly with synthetic workspaces).
pub fn analyze_parsed(
    files: &[(String, ParsedFile)],
    crate_names: &BTreeMap<String, String>,
    policy: &EffectPolicy,
) -> Analysis {
    // ---- pass 1: enumerate nodes (named fns + job closures) ----------
    let mut pending: Vec<PendingNode> = Vec::new();
    for (file_idx, (rel, parsed)) in files.iter().enumerate() {
        let prefix = id_prefix(rel, crate_names);
        let code: Vec<&Token> = parsed.code.iter().collect();
        for f in &parsed.fns {
            if f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let id = format!("{prefix}::{}", f.qualified());
            pending.push(PendingNode {
                id: id.clone(),
                file_idx,
                line: f.line,
                sig: (f.fn_idx, open),
                body: (open, close),
                owner: f.owner.clone(),
                is_root: false,
            });
            // Closures passed to the parallel-map entry points, rooted.
            for (pipe, body_range, line) in job_closures(&code, open, close) {
                pending.push(PendingNode {
                    id: format!("{id}::{{closure@{line}}}"),
                    file_idx,
                    line,
                    sig: (pipe, body_range.0),
                    body: body_range,
                    owner: f.owner.clone(),
                    is_root: !parsed.test_lines.contains(&line),
                });
            }
        }
    }

    // ---- pass 2: resolution indexes ----------------------------------
    // name → ids (all fns); methods (has_self) are a subset by name.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, (rel, parsed)) in files.iter().enumerate() {
        let prefix = id_prefix(rel, crate_names);
        for f in &parsed.fns {
            if f.is_test || f.body.is_none() {
                continue;
            }
            let id_pos = pending
                .iter()
                .position(|p| p.file_idx == idx && p.id == format!("{prefix}::{}", f.qualified()));
            let Some(pos) = id_pos else { continue };
            by_name.entry(f.name.clone()).or_default().push(pos);
            if f.has_self {
                methods_by_name.entry(f.name.clone()).or_default().push(pos);
            }
        }
    }

    // ---- pass 3: seed effects + extract/resolve calls ----------------
    let mut nodes: BTreeMap<String, Node> = BTreeMap::new();
    let mut allow_findings: Vec<AllowFinding> = Vec::new();
    let mut file_allows: Vec<Vec<EffectAllow>> = files
        .iter()
        .map(|(_, p)| collect_effect_allows(&p.comments))
        .collect();

    for p in &pending {
        let (rel, parsed) = &files[p.file_idx];
        let code: Vec<&Token> = parsed.code.iter().collect();
        let sig = &code[p.sig.0..p.sig.1];
        let body = &code[p.body.0..=p.body.1.min(code.len() - 1)];
        let seeds = seed_effects(sig, body, &mut file_allows[p.file_idx]);
        let mut own = EffectSet::empty();
        for s in &seeds {
            own.insert(s.effect);
        }
        subtract_islands(&mut own, rel, &p.id, policy);
        let calls = resolve_calls(
            body,
            p,
            &files[p.file_idx].1,
            rel,
            crate_names,
            &pending,
            &by_name,
            &methods_by_name,
        );
        let is_root = p.is_root
            || policy
                .extra_root_suffixes
                .iter()
                .any(|s| p.id == *s || p.id.ends_with(&format!("::{s}")));
        nodes.insert(
            p.id.clone(),
            Node {
                file: rel.clone(),
                line: p.line,
                own,
                effective: own,
                calls,
                seeds,
                is_root,
                via: BTreeMap::new(),
            },
        );
    }

    // Defective xtask:effect comments (outside test code) are hard errors.
    for (file_idx, allows) in file_allows.iter().enumerate() {
        let (rel, parsed) = &files[file_idx];
        for a in allows {
            if parsed.test_lines.contains(&a.line) {
                continue;
            }
            let message = if a.effect.is_none() {
                format!("`{}` does not name a known effect", a.text)
            } else if a.used && !a.reason_ok {
                format!(
                    "`{}` needs a substantive reason after the colon (≥ 10 chars)",
                    a.text
                )
            } else if !a.used {
                format!(
                    "`{}` sanctions no effect seed on this or the next line",
                    a.text
                )
            } else {
                continue;
            };
            allow_findings.push(AllowFinding {
                file: rel.clone(),
                line: a.line,
                message,
            });
        }
    }

    // ---- pass 4: fixpoint propagation with islands -------------------
    let ids: Vec<String> = nodes.keys().cloned().collect();
    loop {
        let mut changed = false;
        for id in &ids {
            let (mut eff, calls, file) = {
                let n = &nodes[id];
                (n.own, n.calls.clone(), n.file.clone())
            };
            let mut via: BTreeMap<&'static str, Option<String>> = BTreeMap::new();
            for e in ALL_EFFECTS {
                if nodes[id].own.contains(e) {
                    via.insert(e.name(), None);
                }
            }
            for callee in &calls {
                if let Some(c) = nodes.get(callee) {
                    for e in c.effective.iter() {
                        if !eff.contains(e) {
                            eff.insert(e);
                            via.insert(e.name(), Some(callee.clone()));
                        }
                    }
                }
            }
            subtract_islands(&mut eff, &file, id, policy);
            let n = nodes.get_mut(id).expect("node id from keys");
            if n.effective != eff || n.via != via {
                n.effective = eff;
                n.via = via;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 5: enforce roots ---------------------------------------
    let mut violations = Vec::new();
    for id in &ids {
        let n = &nodes[id];
        if !n.is_root || n.effective.is_empty() {
            continue;
        }
        for effect in n.effective.iter() {
            if let Some((chain, seed, seed_file)) = witness_chain(&nodes, id, effect) {
                violations.push(EffectViolation {
                    root: id.clone(),
                    effect,
                    chain,
                    seed,
                    seed_file,
                });
            }
        }
    }
    violations.sort_by(|a, b| (&a.root, a.effect).cmp(&(&b.root, b.effect)));
    allow_findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Analysis {
        nodes,
        violations,
        allow_findings,
    }
}

/// Removes island-sanctioned effects for the node at `file`/`id`.
fn subtract_islands(eff: &mut EffectSet, file: &str, id: &str, policy: &EffectPolicy) {
    if policy.io_island_files.iter().any(|f| f == file) {
        eff.remove(Effect::Io);
    }
    if policy
        .wallclock_island_prefixes
        .iter()
        .any(|p| id.starts_with(p.as_str()))
    {
        eff.remove(Effect::WallClock);
    }
    if policy
        .unsafe_island_prefixes
        .iter()
        .any(|p| file.starts_with(p.as_str()))
    {
        eff.remove(Effect::Unsafe);
    }
}

/// Follows `via` links from `root` until the node whose own body seeds
/// `effect`; returns the id chain, the seed, and the seeding file.
fn witness_chain(
    nodes: &BTreeMap<String, Node>,
    root: &str,
    effect: Effect,
) -> Option<(Vec<String>, Seed, String)> {
    let mut chain = vec![root.to_string()];
    let mut current = root.to_string();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    loop {
        if !visited.insert(current.clone()) {
            return None; // cycle without a seed — should not happen
        }
        let n = nodes.get(&current)?;
        match n.via.get(effect.name()) {
            Some(None) | None => {
                // Own seed here (via=None), or an island-adjacent node
                // whose recorded via is stale; find the concrete seed.
                let seed = n.seeds.iter().find(|s| s.effect == effect)?.clone();
                return Some((chain, seed, n.file.clone()));
            }
            Some(Some(callee)) => {
                chain.push(callee.clone());
                current = callee.clone();
            }
        }
    }
}

/// `crates/core/src/telemetry/mod.rs` → `reduce_core::telemetry`;
/// `crates/bench/src/bin/fig2.rs` → `reduce_bench::bin::fig2`.
fn id_prefix(rel: &str, crate_names: &BTreeMap<String, String>) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let dir = parts.get(1).copied().unwrap_or("");
    let krate = crate_names
        .get(dir)
        .cloned()
        .unwrap_or_else(|| dir.replace('-', "_"));
    let mut out = krate;
    // Path segments after `src/`, minus the file extension and the
    // `lib`/`main`/`mod` pseudo-names.
    if let Some(src_at) = parts.iter().position(|p| *p == "src") {
        for (i, part) in parts.iter().enumerate().skip(src_at + 1) {
            let name = if i == parts.len() - 1 {
                part.trim_end_matches(".rs")
            } else {
                part
            };
            if matches!(name, "lib" | "main" | "mod") {
                continue;
            }
            out.push_str("::");
            out.push_str(name);
        }
    }
    out
}

/// Finds closures passed (at argument depth) to the `ROOT_MARKERS`
/// calls inside `[open..=close]`. Returns `(pipe-token-idx, body-range,
/// line)` per closure.
fn job_closures(code: &[&Token], open: usize, close: usize) -> Vec<(usize, (usize, usize), u32)> {
    let mut out = Vec::new();
    let mut i = open;
    while i <= close && i < code.len() {
        let t = code[i];
        if t.kind == TokenKind::Ident && ROOT_MARKERS.contains(&t.text.as_str()) {
            // Skip an optional turbofish between the name and the paren.
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.text == ":")
                && code.get(j + 1).is_some_and(|n| n.text == ":")
                && code.get(j + 2).is_some_and(|n| n.text == "<")
            {
                let mut angle = 0i32;
                j += 2;
                while j < code.len() {
                    match code[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if code.get(j).is_some_and(|n| n.text == "(") {
                let call_close = matching_paren(code, j);
                out.extend(closures_in_args(code, j, call_close));
                // Do not jump past the call: nested parallel_map calls
                // inside the arguments must be seen too; the scan just
                // continues token by token.
            }
        }
        i += 1;
    }
    out
}

/// Extracts top-level closure arguments between `open` and `close`
/// (the parens of one call).
fn closures_in_args(
    code: &[&Token],
    open: usize,
    close: usize,
) -> Vec<(usize, (usize, usize), u32)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i <= close && i < code.len() {
        let t = code[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
            (TokenKind::Punct, ")" | "]" | "}") => depth -= 1,
            // A closure argument: `|` as the first token of an argument
            // (preceded by `(` or `,` at depth 1), preceded by `move`, or
            // passed by reference (`&|…|`, as `run_job_resilient` takes).
            (TokenKind::Punct, "|") if depth == 1 => {
                let starts_arg = i > 0
                    && (code[i - 1].text == "("
                        || code[i - 1].text == ","
                        || code[i - 1].text == "move"
                        || (code[i - 1].text == "&"
                            && i > 1
                            && (code[i - 2].text == "(" || code[i - 2].text == ",")));
                if !starts_arg {
                    i += 1;
                    continue;
                }
                // Parameter list: up to the matching `|` (`||` is two
                // adjacent pipes = empty parameter list).
                let params_end = if code.get(i + 1).is_some_and(|n| n.text == "|") {
                    i + 1
                } else {
                    let mut k = i + 1;
                    let mut d = 0i32;
                    while k < code.len() {
                        match code[k].text.as_str() {
                            "(" | "[" | "<" => d += 1,
                            ")" | "]" | ">" => d -= 1,
                            "|" if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    k
                };
                // Body: a braced block, or an expression up to the next
                // `,` at this depth / the call's closing paren. A `->`
                // annotation forces a braced body (expression closures
                // cannot carry one), so only then scan ahead to the `{`.
                let mut b = params_end + 1;
                if code.get(b).is_some_and(|n| n.text == "-")
                    && code.get(b + 1).is_some_and(|n| n.text == ">")
                {
                    while b < code.len() && code[b].text != "{" {
                        b += 1;
                    }
                }
                let (body, after) = if code.get(b).is_some_and(|n| n.text == "{") {
                    let end = matching_brace(code, b);
                    ((b, end), end + 1)
                } else {
                    // Expression closure: tokens from just after the
                    // params to the `,`/`)` ending the argument.
                    let mut k = params_end + 1;
                    let mut d = 0i32;
                    while k <= close && k < code.len() {
                        match code[k].text.as_str() {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            "," if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    ((params_end + 1, k.saturating_sub(1)), k)
                };
                out.push(((i, body.0), body, t.line));
                i = after;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    // Flatten the sig tuple (pipe..body-open) into the expected shape.
    out.into_iter()
        .map(|((pipe, _), body, line)| (pipe, body, line))
        .collect()
}

fn matching_paren(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Rust keywords and control-flow idents that look like calls.
const NON_CALL_IDENTS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "fn", "move", "let",
    "where", "impl",
];

/// Extracts calls from a body and resolves them to node indices.
#[allow(clippy::too_many_arguments)]
fn resolve_calls(
    body: &[&Token],
    p: &PendingNode,
    parsed: &ParsedFile,
    rel: &str,
    crate_names: &BTreeMap<String, String>,
    pending: &[PendingNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    methods_by_name: &BTreeMap<String, Vec<usize>>,
) -> BTreeSet<String> {
    let prefix = id_prefix(rel, crate_names);
    let krate = prefix.split("::").next().unwrap_or("").to_string();
    let mut calls: BTreeSet<String> = BTreeSet::new();

    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || NON_CALL_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        // A call: ident directly followed by `(`; macros (`name!(..)`)
        // are skipped — they are not functions.
        if body.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        let name = t.text.as_str();
        // Leading path segments: `a :: b :: name (`.
        let mut segs: Vec<String> = vec![name.to_string()];
        let mut k = i;
        while k >= 2 && body[k - 1].text == ":" && body[k - 2].text == ":" {
            if k >= 3 && body[k - 3].kind == TokenKind::Ident {
                segs.insert(0, body[k - 3].text.clone());
                k -= 3;
            } else {
                break; // `::<turbofish>` or global `::` path head
            }
        }
        let is_method = k >= 1 && body[k - 1].text == ".";

        if is_method && segs.len() == 1 {
            // `.name(` — link every workspace method of that name.
            if let Some(hits) = methods_by_name.get(name) {
                for &h in hits {
                    calls.insert(pending[h].id.clone());
                }
            }
            continue;
        }
        if segs.len() == 1 {
            // Bare call: module-local, then imports, then same-crate.
            let local: Vec<&PendingNode> = by_name
                .get(name)
                .map(|hits| {
                    hits.iter()
                        .map(|&h| &pending[h])
                        .filter(|c| {
                            c.owner.is_none()
                                && module_of(&c.id) == module_of(&p.id)
                                && !c.id.contains("{closure")
                        })
                        .collect()
                })
                .unwrap_or_default();
            if !local.is_empty() {
                for c in local {
                    calls.insert(c.id.clone());
                }
                continue;
            }
            if resolve_import(name, parsed, by_name, pending, &mut calls) {
                continue;
            }
            if let Some(hits) = by_name.get(name) {
                for &h in hits {
                    let c = &pending[h];
                    if c.owner.is_none() && c.id.starts_with(&format!("{krate}::"))
                        || c.owner.is_none() && module_of(&c.id) == krate
                    {
                        calls.insert(c.id.clone());
                    }
                }
            }
            continue;
        }
        // Qualified path: normalise `crate`/`self`/`super`/`Self`, map
        // the head through imports, then suffix-match.
        let mut path = segs.clone();
        let mut same_crate_only = false;
        match path[0].as_str() {
            "crate" | "super" | "self" => {
                path.remove(0);
                same_crate_only = true;
                while path.first().is_some_and(|s| s == "super" || s == "self") {
                    path.remove(0);
                }
            }
            "Self" => {
                if let Some(owner) = &p.owner {
                    path[0] = owner.clone();
                }
            }
            head => {
                if let Some(u) = parsed.uses.iter().find(|u| u.alias == *head) {
                    let mut full = u.path.clone();
                    if full
                        .first()
                        .is_some_and(|s| s == "crate" || s == "super" || s == "self")
                    {
                        full.remove(0);
                        same_crate_only = true;
                    }
                    full.extend(path.drain(1..));
                    path = full;
                }
            }
        }
        if path.is_empty() {
            continue;
        }
        let suffix = format!("::{}", path.join("::"));
        let last = path.last().cloned().unwrap_or_default();
        if let Some(hits) = by_name.get(&last) {
            for &h in hits {
                let c = &pending[h];
                let id_matches = c.id.ends_with(&suffix) || c.id == path.join("::");
                let crate_ok = !same_crate_only || c.id.starts_with(&format!("{krate}::"));
                if id_matches && crate_ok {
                    calls.insert(c.id.clone());
                }
            }
        }
        // `Type::method(..)` UFCS: fall back to two-segment owner::name
        // matching when the full path found nothing.
        if segs.len() == 2 && !calls.iter().any(|c| c.ends_with(&suffix)) {
            if let Some(hits) = by_name.get(name) {
                for &h in hits {
                    let c = &pending[h];
                    if c.id.ends_with(&format!("::{}::{}", segs[0], name)) {
                        calls.insert(c.id.clone());
                    }
                }
            }
        }
    }
    calls.remove(&p.id); // direct self-recursion adds nothing
    calls
}

/// Resolves a bare name through the file's `use` aliases (including
/// globs); returns whether anything was linked.
fn resolve_import(
    name: &str,
    parsed: &ParsedFile,
    by_name: &BTreeMap<String, Vec<usize>>,
    pending: &[PendingNode],
    calls: &mut BTreeSet<String>,
) -> bool {
    let mut hit = false;
    for u in &parsed.uses {
        let path = if u.alias == name {
            u.path.clone()
        } else if u.alias.is_empty() {
            // Glob: try `prefix::name`.
            let mut p = u.path.clone();
            p.push(name.to_string());
            p
        } else {
            continue;
        };
        let mut p = path;
        while p
            .first()
            .is_some_and(|s| s == "crate" || s == "super" || s == "self")
        {
            p.remove(0);
        }
        if p.is_empty() {
            continue;
        }
        let suffix = format!("::{}", p.join("::"));
        if let Some(hits) = by_name.get(p.last().map(String::as_str).unwrap_or(name)) {
            for &h in hits {
                let c = &pending[h];
                if c.id.ends_with(&suffix) || c.id == p.join("::") {
                    calls.insert(c.id.clone());
                    hit = true;
                }
            }
        }
    }
    hit
}

/// `reduce_core::exec::parallel_map` → `reduce_core::exec`.
fn module_of(id: &str) -> String {
    match id.rsplit_once("::") {
        Some((m, _)) => m.to_string(),
        None => String::new(),
    }
}

// ---------------------------------------------------------------------------
// Rendering + the ratcheted check
// ---------------------------------------------------------------------------

/// Renders the analysis as one JSON document (nodes, edges, roots,
/// violations) — the `cargo xtask graph --format json` output.
pub fn render_json(a: &Analysis) -> String {
    let mut out = String::from("{\n  \"nodes\": [");
    let mut first = true;
    for (id, n) in &a.nodes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"id\": ");
        push_json_string(&mut out, id);
        out.push_str(", \"file\": ");
        push_json_string(&mut out, &n.file);
        out.push_str(&format!(", \"line\": {}, \"root\": {}", n.line, n.is_root));
        out.push_str(", \"own\": [");
        push_effect_list(&mut out, n.own);
        out.push_str("], \"effects\": [");
        push_effect_list(&mut out, n.effective);
        out.push_str("], \"calls\": [");
        for (j, c) in n.calls.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, c);
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"violations\": [");
    let mut first = true;
    for v in &a.violations {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"root\": ");
        push_json_string(&mut out, &v.root);
        out.push_str(", \"effect\": ");
        push_json_string(&mut out, v.effect.name());
        out.push_str(", \"chain\": ");
        push_json_string(&mut out, &v.render_chain());
        out.push('}');
    }
    out.push_str("\n  ],\n  \"allow_findings\": [");
    let mut first = true;
    for f in &a.allow_findings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"file\": ");
        push_json_string(&mut out, &f.file);
        out.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
        push_json_string(&mut out, &f.message);
        out.push('}');
    }
    let roots = a.nodes.values().filter(|n| n.is_root).count();
    let edges: usize = a.nodes.values().map(|n| n.calls.len()).sum();
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"functions\": {}, \"edges\": {}, \"roots\": {}, \
         \"violations\": {}}}\n}}\n",
        a.nodes.len(),
        edges,
        roots,
        a.violations.len()
    ));
    out
}

fn push_effect_list(out: &mut String, set: EffectSet) {
    let mut first = true;
    for e in set.iter() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        push_json_string(out, e.name());
    }
}

/// Renders the human-oriented summary (`cargo xtask graph`).
pub fn render_text(a: &Analysis) -> String {
    let roots: Vec<(&String, &Node)> = a.nodes.iter().filter(|(_, n)| n.is_root).collect();
    let edges: usize = a.nodes.values().map(|n| n.calls.len()).sum();
    let mut out = format!(
        "xtask graph: {} function(s), {} call edge(s), {} enforced root(s)\n",
        a.nodes.len(),
        edges,
        roots.len()
    );
    for (id, n) in &roots {
        let status = if n.effective.is_empty() {
            "effect-free".to_string()
        } else {
            let names: Vec<&str> = n.effective.iter().map(|e| e.name()).collect();
            names.join("+")
        };
        out.push_str(&format!("  root {id} [{status}] ({}:{})\n", n.file, n.line));
    }
    for v in &a.violations {
        out.push_str(&format!(
            "error[xtask::effect-{}]: effect `{}` reaches a parallel job root\n  chain: {}\n",
            v.effect.name(),
            v.effect.name(),
            v.render_chain()
        ));
    }
    for f in &a.allow_findings {
        out.push_str(&format!(
            "error[xtask::effect-allow]: {}\n  --> {}:{}\n",
            f.message, f.file, f.line
        ));
    }
    out
}

/// Outcome of comparing an analysis against the baseline's `effects`
/// section: what is new (fails), what is tolerated, and which baseline
/// entries are stale (also fails — tighten the file).
#[derive(Debug, Default)]
pub struct EffectCheck {
    /// Violations not covered by the baseline.
    pub fresh: Vec<String>,
    /// Baselined (tolerated) violation count.
    pub tolerated: usize,
    /// `(root, effect)` baseline entries nothing matched any more.
    pub stale: Vec<(String, String)>,
}

impl EffectCheck {
    /// Whether the check passes.
    pub fn ok(&self, allow_findings: &[AllowFinding]) -> bool {
        self.fresh.is_empty() && self.stale.is_empty() && allow_findings.is_empty()
    }
}

/// Ratchets `a.violations` against `baseline.effects`.
pub fn check_against_baseline(a: &Analysis, baseline: &Baseline) -> EffectCheck {
    let mut check = EffectCheck::default();
    let mut observed: BTreeMap<(String, String), u64> = BTreeMap::new();
    for v in &a.violations {
        *observed
            .entry((v.root.clone(), v.effect.name().to_string()))
            .or_insert(0) += 1;
    }
    for v in &a.violations {
        let key = (v.root.clone(), v.effect.name().to_string());
        let seen = observed.get(&key).copied().unwrap_or(0);
        if seen <= baseline.effect_allowed(&v.root, v.effect.name()) {
            check.tolerated += 1;
        } else {
            check.fresh.push(format!(
                "effect `{}` reaches root `{}`\n  chain: {}",
                v.effect.name(),
                v.root,
                v.render_chain()
            ));
        }
    }
    for (root, effects) in &baseline.effects {
        for (effect, allowed) in effects {
            let seen = observed
                .get(&(root.clone(), effect.clone()))
                .copied()
                .unwrap_or(0);
            if seen < *allowed {
                check.stale.push((root.clone(), effect.clone()));
            }
        }
    }
    check
}

/// The observed `effects` section (what `--update-baseline` writes).
pub fn observed_effects(a: &Analysis) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for v in &a.violations {
        *out.entry(v.root.clone())
            .or_default()
            .entry(v.effect.name().to_string())
            .or_insert(0) += 1;
    }
    out
}
