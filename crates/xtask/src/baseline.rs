//! Ratchet baseline: pre-existing violations are tolerated, new ones fail.
//!
//! The baseline is a checked-in JSON file with two ratchet sections:
//! `files` maps workspace-relative paths to per-lint violation counts,
//! and `effects` maps effect-analysis root ids (`cargo xtask graph`) to
//! per-effect violation counts:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files": {
//!     "crates/systolic/src/mapping.rs": { "index": 12, "unwrap": 1 }
//!   },
//!   "effects": {}
//! }
//! ```
//!
//! Counts (not line numbers) make the ratchet robust to unrelated edits
//! shifting code up or down a file. A key may have **at most** its
//! baselined count per lint/effect: anything above fails as a new
//! violation, and anything *below* fails too — as a stale baseline entry
//! — so improvements are locked in by re-running
//! `cargo xtask lint --update-baseline` and committing the smaller file.
//!
//! The (de)serializer below is hand-rolled because this workspace
//! deliberately carries no JSON dependency; the grammar it accepts is
//! exactly the subset the emitter produces, plus arbitrary whitespace.

use std::collections::BTreeMap;

/// Parsed baseline: `path -> lint-name -> allowed count`, plus the
/// effect-analysis ratchet `root-fn -> effect -> allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file allowed violation counts.
    pub files: BTreeMap<String, BTreeMap<String, u64>>,
    /// Per-root allowed effect-violation counts (`cargo xtask graph`).
    pub effects: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Allowed count for a `(file, lint)` pair; zero when absent.
    pub fn allowed(&self, file: &str, lint: &str) -> u64 {
        self.files
            .get(file)
            .and_then(|m| m.get(lint))
            .copied()
            .unwrap_or(0)
    }

    /// Allowed count for a `(root, effect)` pair; zero when absent.
    pub fn effect_allowed(&self, root: &str, effect: &str) -> u64 {
        self.effects
            .get(root)
            .and_then(|m| m.get(effect))
            .copied()
            .unwrap_or(0)
    }

    /// Total violation count across all files and lints.
    pub fn total(&self) -> u64 {
        self.files.values().flat_map(|m| m.values()).sum()
    }

    /// Serialises to the canonical JSON layout (sorted, 2-space indent,
    /// trailing newline) so regeneration is diff-stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"files\": {");
        push_count_map(&mut out, &self.files);
        out.push_str("\n  },\n  \"effects\": {");
        push_count_map(&mut out, &self.effects);
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the JSON layout produced by [`Baseline::to_json`].
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        let Json::Object(top) = value else {
            return Err("baseline root must be an object".to_string());
        };
        let mut baseline = Baseline::default();
        match top.iter().find(|(k, _)| k == "version").map(|(_, v)| v) {
            Some(Json::Number(1)) => {}
            Some(_) => return Err("unsupported baseline version".to_string()),
            None => return Err("baseline is missing \"version\"".to_string()),
        }
        let Some(Json::Object(files)) = top.iter().find(|(k, _)| k == "files").map(|(_, v)| v)
        else {
            return Err("baseline is missing \"files\" object".to_string());
        };
        baseline.files = parse_count_map(files)?;
        // `effects` is optional so pre-graph baselines still parse.
        if let Some(effects) = top.iter().find(|(k, _)| k == "effects").map(|(_, v)| v) {
            let Json::Object(effects) = effects else {
                return Err("\"effects\" must be an object".to_string());
            };
            baseline.effects = parse_count_map(effects)?;
        }
        Ok(baseline)
    }
}

/// Emits a sorted two-level `key -> subkey -> count` object body
/// (without the enclosing braces, which differ in indentation context).
fn push_count_map(out: &mut String, map: &BTreeMap<String, BTreeMap<String, u64>>) {
    let mut first_key = true;
    for (key, counts) in map {
        if counts.is_empty() {
            continue;
        }
        if !first_key {
            out.push(',');
        }
        first_key = false;
        out.push_str("\n    ");
        push_json_string(out, key);
        out.push_str(": {");
        let mut first_count = true;
        for (name, count) in counts {
            if !first_count {
                out.push(',');
            }
            first_count = false;
            out.push_str("\n      ");
            push_json_string(out, name);
            out.push_str(&format!(": {count}"));
        }
        out.push_str("\n    }");
    }
}

/// Parses a two-level `key -> subkey -> count` object.
fn parse_count_map(
    entries: &[(String, Json)],
) -> Result<BTreeMap<String, BTreeMap<String, u64>>, String> {
    let mut out = BTreeMap::new();
    for (key, counts) in entries {
        let Json::Object(counts) = counts else {
            return Err(format!("entry for {key:?} must be an object"));
        };
        let mut parsed = BTreeMap::new();
        for (name, count) in counts {
            let Json::Number(n) = count else {
                return Err(format!("count for {key:?}/{name:?} must be a number"));
            };
            parsed.insert(name.clone(), *n);
        }
        out.insert(key.clone(), parsed);
    }
    Ok(out)
}

/// Appends `s` as a JSON string literal (escaping `"`, `\` and control
/// characters — paths and lint names never need more).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, strings, unsigned integers)
// ---------------------------------------------------------------------------

enum Json {
    Object(Vec<(String, Json)>),
    Number(u64),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", *b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let start = self.pos;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'/') => out.push('/'),
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                _ => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| format!("unterminated string starting at byte {start}"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<u64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut b = Baseline::default();
        b.files.insert(
            "crates/systolic/src/mapping.rs".to_string(),
            [("index".to_string(), 12), ("unwrap".to_string(), 1)].into(),
        );
        b.files.insert(
            "crates/core/src/policy.rs".to_string(),
            [("expect".to_string(), 3)].into(),
        );
        b
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let json = b.to_json();
        let back = Baseline::from_json(&json).expect("round trip parses");
        assert_eq!(b, back);
    }

    #[test]
    fn emission_is_sorted_and_stable() {
        let json = sample().to_json();
        // BTreeMap ordering: core before systolic.
        let core = json.find("core").expect("core entry present");
        let systolic = json.find("systolic").expect("systolic entry present");
        assert!(core < systolic);
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"version\": 1"));
    }

    #[test]
    fn allowed_defaults_to_zero() {
        let b = sample();
        assert_eq!(b.allowed("crates/systolic/src/mapping.rs", "index"), 12);
        assert_eq!(b.allowed("crates/systolic/src/mapping.rs", "panic"), 0);
        assert_eq!(b.allowed("no/such/file.rs", "index"), 0);
        assert_eq!(b.total(), 16);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::from_json("").is_err());
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"version\": 2, \"files\": {}}").is_err());
        assert!(Baseline::from_json("{\"version\": 1}").is_err());
        assert!(Baseline::from_json("{\"version\": 1, \"files\": {}} x").is_err());
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        let back = Baseline::from_json(&b.to_json()).expect("empty round trip");
        assert_eq!(b, back);
        assert_eq!(back.total(), 0);
    }

    #[test]
    fn effects_section_round_trips_and_is_optional() {
        let mut b = sample();
        b.effects.insert(
            "reduce_core::resilience::characterize::{closure@415}".to_string(),
            [("wall-clock".to_string(), 1)].into(),
        );
        let json = b.to_json();
        assert!(json.contains("\"effects\""));
        let back = Baseline::from_json(&json).expect("effects round trip");
        assert_eq!(b, back);
        assert_eq!(
            back.effect_allowed(
                "reduce_core::resilience::characterize::{closure@415}",
                "wall-clock"
            ),
            1
        );
        assert_eq!(back.effect_allowed("no::such::root", "io"), 0);
        // Pre-graph baselines (no "effects" key) still parse.
        let legacy = Baseline::from_json("{\"version\": 1, \"files\": {}}").expect("legacy parses");
        assert!(legacy.effects.is_empty());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut b = Baseline::default();
        b.files.insert(
            "odd\"name\\with\nescapes.rs".to_string(),
            [("panic".to_string(), 2)].into(),
        );
        let back = Baseline::from_json(&b.to_json()).expect("escaped round trip");
        assert_eq!(b, back);
    }
}
