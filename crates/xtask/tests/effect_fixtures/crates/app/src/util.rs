//! Helpers for the effect fixtures: propagation hops, a sanctioned
//! seed, and a defective allow comment.

// First hop of the two-hop chain: clean itself, calls the seeder.
pub fn step_one(x: u32) -> u32 {
    step_two(x) + 1
}

// Second hop: the actual entropy seed.
pub fn step_two(x: u32) -> u32 {
    let mut rng = thread_rng();
    x ^ rng.next_u32()
}

// Pure helper: no effects at all.
pub fn pure_add(a: u32, b: u32) -> u32 {
    a + b
}

// A wall-clock seed sanctioned at the use site: callers see it clean.
pub fn timed_step(x: u32) -> u32 {
    // xtask:effect(wall-clock): fixture stand-in for a redacted diagnostic timer
    let t = Instant::now();
    x + t.elapsed().subsec_nanos()
}

// A defective allow: it sanctions nothing on this or the next line, so
// the analysis must report it instead of letting the hatch rot.
pub fn decoy(x: u32) -> u32 {
    // xtask:effect(entropy): this sanctions no seed and must be flagged
    x + 1
}
