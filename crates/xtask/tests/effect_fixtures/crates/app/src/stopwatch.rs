//! The fixture's wall-clock island: the test policy sanctions
//! `app::stopwatch::Stopwatch::` for wall-clock ONLY — any other effect
//! that creeps into the island must still reach callers.

pub struct Stopwatch {
    pub t0: u64,
}

impl Stopwatch {
    // Sanctioned: the island absorbs this wall-clock read.
    pub fn elapsed_ms(&self) -> u32 {
        let t = Instant::now();
        t.elapsed().subsec_nanos() / 1_000_000
    }

    // NOT sanctioned: entropy is outside the island's charter.
    pub fn bad_entropy(&self) -> u32 {
        let mut rng = thread_rng();
        rng.next_u32()
    }
}
