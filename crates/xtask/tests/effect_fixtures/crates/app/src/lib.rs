//! Effect-analysis fixture workspace: parsed by the graph tests, never
//! compiled. Each `spawn_*` function is one scenario; the integration
//! tests in `tests/effects.rs` assert on the exact violations (and
//! non-violations) the analysis reports for them.

use crate::util::{pure_add, step_one, timed_step};

pub fn parallel_map(seed: u32, job: u32) -> u32 {
    seed + job
}

// Scenario: the job body itself reads the wall clock — a direct seed,
// chain `root → Instant::now`.
pub fn spawn_direct(items: u32) -> u32 {
    parallel_map(items, |x| {
        let t = Instant::now();
        x + t.elapsed().subsec_nanos()
    })
}

// Scenario: entropy two function calls away — chain
// `root → step_one → step_two → thread_rng`.
pub fn spawn_two_hop(items: u32) -> u32 {
    parallel_map(items, |x| step_one(x))
}

// Scenario: effect behind a method call — chain
// `root → Widget::sample → SystemTime::now`.
pub fn spawn_method(items: u32) -> u32 {
    parallel_map(items, |x| {
        let gauge = crate::widget::Widget { last: 0 };
        x + gauge.sample()
    })
}

// Scenario: clean job — pure helper, no violation.
pub fn spawn_clean(items: u32) -> u32 {
    parallel_map(items, |x| pure_add(x, 1))
}

// Scenario: io through the sanctioned island — the atomic writer
// absorbs the effect, no violation.
pub fn spawn_island_ok(items: u32) -> u32 {
    parallel_map(items, |x| {
        crate::island::save_result("out.txt", "data");
        x
    })
}

// Scenario: laundering attempt — calling the island does NOT sanction
// the job's *own* direct write; chain `root → fs::write`.
pub fn spawn_launder(items: u32) -> u32 {
    parallel_map(items, |x| {
        crate::island::save_result("out.txt", "data");
        std::fs::write("side.txt", "oops");
        x
    })
}

// Scenario: wall-clock through the stopwatch island — clean.
pub fn spawn_stopwatch_ok(items: u32) -> u32 {
    parallel_map(items, |x| {
        let sw = crate::stopwatch::Stopwatch { t0: 0 };
        x + sw.elapsed_ms()
    })
}

// Scenario: the stopwatch island only absorbs wall-clock; entropy it
// grows later must still escape — chain
// `root → Stopwatch::bad_entropy → thread_rng`.
pub fn spawn_stopwatch_entropy(items: u32) -> u32 {
    parallel_map(items, |x| {
        let sw = crate::stopwatch::Stopwatch { t0: 0 };
        x + sw.bad_entropy()
    })
}

// Scenario: a seed sanctioned by `xtask:effect` with a reason — clean.
pub fn spawn_allowed(items: u32) -> u32 {
    parallel_map(items, |x| timed_step(x))
}
