//! A method-call seeder: effects must propagate through `.sample()`
//! even though the receiver's type is invisible at token level.

pub struct Widget {
    pub last: u64,
}

impl Widget {
    // Wall-clock seed behind a method.
    pub fn sample(&self) -> u32 {
        let now = SystemTime::now();
        now.subsec_nanos() + self.last as u32
    }

    // Clean method on the same type: over-approximate method linking
    // must not invent effects for it.
    pub fn stale(&self) -> u32 {
        self.last as u32
    }
}
