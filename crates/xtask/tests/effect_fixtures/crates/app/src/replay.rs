//! A named-function root (via the policy's `extra_root_suffixes`, like
//! the real journal replay path) with an unordered-iteration effect.

pub fn apply_record(map: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for k in map.keys() {
        total += *k;
    }
    total
}

// Ordered replay: same shape over a BTreeMap, clean.
pub fn apply_record_ordered(map: &BTreeMap<u32, u32>) -> u32 {
    let mut total = 0;
    for k in map.keys() {
        total += *k;
    }
    total
}
