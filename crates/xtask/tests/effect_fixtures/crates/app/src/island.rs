//! The fixture's io island: the test policy declares this file as
//! sanctioned, so its direct writes must not escape to callers.

pub fn save_result(path: &str, data: &str) {
    let tmp = "tmp.txt";
    std::fs::write(tmp, data);
    std::fs::rename(tmp, path);
}
