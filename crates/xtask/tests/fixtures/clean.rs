//! Fixture: idiomatic result-producing code — zero diagnostics expected,
//! with every lint family enabled.

pub struct Accumulator {
    seed: u64,
    totals: Vec<f64>,
}

impl Accumulator {
    pub fn new(seed: u64, n: usize) -> Self {
        Accumulator { seed, totals: vec![0.0; n] }
    }

    /// Seeded randomness, `get`-based access, epsilon comparison, and a
    /// widening (not narrowing) cast: the patterns the lints steer toward.
    pub fn fold(&mut self, values: &[f32], tol: f64) -> Result<f64, String> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut sum = 0.0f64;
        for (slot, &v) in self.totals.iter_mut().zip(values) {
            *slot += f64::from(v);
            sum += f64::from(v) + f64::from(rng.gen::<f32>());
        }
        let head = self
            .totals
            .first()
            .copied()
            .ok_or_else(|| "empty accumulator".to_string())?;
        if (head - sum).abs() < tol {
            return Ok(head);
        }
        Ok(sum)
    }
}
