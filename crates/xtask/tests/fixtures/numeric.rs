//! Fixture: the numeric-safety family.

pub fn float_comparisons(x: f32, tol: f32) -> bool {
    let exact_eq = x == 0.5; //~ float-eq
    let exact_ne = x != 1.0; //~ float-eq
    let negated = x == -2.5; //~ float-eq
    let literal_lhs = 0.25 == tol; //~ float-eq
    // Epsilon comparison is the sanctioned pattern: silent.
    let with_tolerance = (x - 0.5).abs() < tol;
    // Integer comparisons and compound operators stay silent.
    let ints = 3 == 4;
    let mut acc = 1.0f32;
    acc += 2.0;
    let ordered = acc <= 5.0 && acc >= 0.5;
    exact_eq || exact_ne || negated || literal_lhs || with_tolerance || ints || ordered
}

pub fn lossy_casts(total_loss: f64, n: usize, sum_f64: f64) -> (f32, f32, f32) {
    let averaged = (total_loss / n as f64) as f32; //~ lossy-float-cast
    let renamed = sum_f64 as f32; //~ lossy-float-cast
    let explicit = 2.5f64 as f32; //~ lossy-float-cast
    (averaged, renamed, explicit)
}

pub fn lossless_casts(count: usize, ratio: f32) -> (f32, f64) {
    // Widening or integer→float casts are fine: silent.
    let widened = ratio as f64;
    let counted = count as f32;
    (counted, widened)
}
