//! Fixture: every determinism-family lint fires on this file.
//!
//! Marker syntax is documented in tests/fixtures.rs. This file is
//! reference text for the lint tests — it is never compiled.

use std::time::{Instant, SystemTime};

pub fn seedless_rng() -> u64 {
    let mut rng = rand::thread_rng(); //~ ambient-entropy
    let from_os = SmallRng::from_entropy(); //~ ambient-entropy
    let shortcut: f32 = rand::random(); //~ ambient-entropy
    let _ = (rng, from_os, shortcut);
    0
}

pub fn wall_clock_dependent() -> bool {
    let started = Instant::now(); //~ wall-clock
    let stamp = SystemTime::now(); //~ wall-clock
    let _ = stamp;
    started.elapsed().as_nanos() % 2 == 0
}

pub fn conforming(seed: u64) -> u64 {
    // Seeded construction is the sanctioned pattern: no diagnostics here.
    let rng = SmallRng::seed_from_u64(seed);
    // Idents that merely *contain* the needles stay silent.
    let thread_rng_count = 3;
    let instant_total = 4;
    let _ = rng;
    thread_rng_count + instant_total
}
