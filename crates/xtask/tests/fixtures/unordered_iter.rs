//! Fixture: the `unordered-iter` lint (determinism family).
//!
//! `HashMap`/`HashSet` iteration order depends on the hash seed, so any
//! result that flows out of such a loop can reorder run to run. The lint
//! tracks `let`-bound unordered containers and flags iterator-method
//! calls and `for` loops over them; ordered containers and non-iterating
//! methods stay silent.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn keyed_sums(pairs: &[(String, f32)]) -> Vec<(String, f32)> {
    let mut acc: HashMap<String, f32> = HashMap::new();
    for (k, v) in pairs {
        *acc.entry(k.clone()).or_insert(0.0) += v;
    }
    let mut out = Vec::new();
    for kv in &acc {
        //~^ unordered-iter
        out.push((kv.0.clone(), *kv.1));
    }
    out
}

pub fn key_list(words: &[String]) -> Vec<String> {
    let mut dedup: HashSet<String> = HashSet::new();
    for w in words {
        dedup.insert(w.clone());
    }
    dedup.into_iter().collect() //~ unordered-iter
}

pub fn drain_everything(budgets: &[(u32, u32)]) -> u32 {
    let mut spent: HashMap<u32, u32> = HashMap::new();
    for (id, amount) in budgets {
        *spent.entry(*id).or_insert(0) += amount;
    }
    let mut total = 0;
    spent.retain(|_, v| *v > 0); //~ unordered-iter
    for amounts in spent.values() {
        //~^ unordered-iter
        total += amounts;
    }
    total
}

// Conforming: ordered container, same shape — silent. (The tracker is
// file-wide and unscoped, so this uses a name no HashMap binding shares;
// reusing `acc` here would over-approximate to a finding, by design.)
pub fn keyed_sums_ordered(pairs: &[(String, f32)]) -> Vec<(String, f32)> {
    let mut ordered: BTreeMap<String, f32> = BTreeMap::new();
    for (k, v) in pairs {
        *ordered.entry(k.clone()).or_insert(0.0) += v;
    }
    let mut out = Vec::new();
    for kv in &ordered {
        out.push((kv.0.clone(), *kv.1));
    }
    out
}

// Conforming: membership and size queries do not iterate — silent.
pub fn distinct_count(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    for x in xs {
        seen.insert(*x);
    }
    seen.len()
}

// Sanctioned: drained into a Vec that is sorted before anything reads it.
pub fn sorted_output(pairs: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut acc: HashMap<String, u32> = HashMap::new();
    for (k, v) in pairs {
        *acc.entry(k.clone()).or_insert(0) += v;
    }
    let mut items: Vec<(String, u32)> = Vec::new();
    // xtask:allow(unordered-iter): drained into a Vec sorted below before any result reads it
    for kv in acc.drain() {
        items.push(kv);
    }
    items.sort();
    items
}
