//! Fixture: the `xtask:allow` escape hatch and its meta-lints.

pub fn justified(v: Option<u32>) -> u32 {
    // A substantive reason on the line above suppresses the finding:
    // nothing fires on either line.
    // xtask:allow(unwrap): fixture demonstrating a justified escape hatch
    v.unwrap()
}

pub fn justified_trailing(values: &[u32]) -> u32 {
    values[0] // xtask:allow(index): fixture demonstrating a trailing allow
}

pub fn reason_too_short(v: Option<u32>) -> u32 {
    // A trivial reason still suppresses nothing — the finding fires AND
    // the allow itself is flagged:
    //~v bad-allow
    // xtask:allow(unwrap): why
    v.unwrap() //~ unwrap
}

pub fn unknown_lint_name(v: Option<u32>) -> u32 {
    //~v bad-allow
    // xtask:allow(made-up-lint): this name is not in the catalogue
    v.unwrap() //~ unwrap
}

pub fn stale() -> u32 {
    //~v unused-allow
    // xtask:allow(panic): nothing below panics, so this allow is stale
    7
}
