//! Fixture: the `unsafe-island` gate.
//!
//! Every crate root carries `#![forbid(unsafe_code)]`; this lint is the
//! workspace-level backstop that keeps it so, and — once a SIMD kernel
//! island is declared in `UNSAFE_ISLANDS` — confines `unsafe` to exactly
//! that island by dropping the island files from the lint's scope. The
//! gate is token-level on purpose: *any* `unsafe` keyword fires, whether
//! a block, a fn, or an impl.

pub fn unchecked_sum(v: &[f32]) -> f32 {
    let mut acc = 0.0;
    for i in 0..v.len() {
        acc += unsafe { *v.as_ptr().add(i) }; //~ unsafe-island
    }
    acc
}

pub unsafe fn load_unaligned(p: *const u32) -> u32 {
    //~^ unsafe-island
    p.read_unaligned()
}

pub struct SharedBuf(*mut f32);

unsafe impl Send for SharedBuf {} //~ unsafe-island

// Conforming: the safe equivalent — silent.
pub fn checked_sum(v: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in v {
        acc += x;
    }
    acc
}
