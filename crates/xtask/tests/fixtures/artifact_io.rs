//! Fixture for the artifact-io family: direct artifact writes must fire,
//! reads and the allow hatch must not.

use std::fs::File;
use std::path::Path;

pub fn torn_write(path: &Path, contents: &str) -> std::io::Result<()> {
    std::fs::write(path, contents) //~ artifact-io
}

pub fn torn_create(path: &Path) -> std::io::Result<File> {
    File::create(path) //~ artifact-io
}

pub fn qualified_create(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path) //~ artifact-io
}

pub fn raw_rename(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::rename(from, to) //~ artifact-io
}

pub fn raw_sync(file: &File) -> std::io::Result<()> {
    file.sync_all() //~ artifact-io
}

pub fn raw_sync_data(file: &File) -> std::io::Result<()> {
    file.sync_data() //~ artifact-io
}

pub fn sync_all_as_a_name_is_fine() -> usize {
    // Only the method-call shape is a durability bypass; a local named
    // sync_all is unrelated.
    let sync_all = 1;
    sync_all
}

pub fn reads_are_fine(path: &Path) -> std::io::Result<String> {
    // Reading cannot tear an artifact; only writes are in scope.
    let _probe = File::open(path)?;
    std::fs::read_to_string(path)
}

pub fn justified(path: &Path, contents: &str) -> std::io::Result<()> {
    // xtask:allow(artifact-io): scratch file outside any artifact directory
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    // Test code is exempt: scratch writes in tests are fine.
    #[test]
    fn scratch() {
        std::fs::write("/tmp/scratch", "x").unwrap();
    }
}
