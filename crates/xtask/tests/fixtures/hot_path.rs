//! Fixture: the `hot-path-alloc` family — allocation hygiene inside layer
//! `forward*` / `backward*` bodies.

pub struct Tensor;

impl Tensor {
    pub fn zeros(_d: [usize; 1]) -> Tensor {
        Tensor
    }
}

pub struct Layer {
    cached: Option<Tensor>,
}

impl Layer {
    // Fresh allocations and copies inside a hot body fire:
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = Tensor::zeros([4]); //~ hot-path-alloc
        self.cached = Some(x.clone()); //~ hot-path-alloc
        y
    }

    // Suffixed names (`forward_ws`, `backward_grouped`) are hot too:
    pub fn backward_grouped(&mut self, grad: &Tensor) -> Vec<f32> {
        grad.data().to_vec() //~ hot-path-alloc
    }

    // Vec allocations and the vec! macro fire in hot bodies:
    pub fn backward(&mut self, _grad: &Tensor) -> Vec<f32> {
        let mut scratch: Vec<f32> = Vec::new(); //~ hot-path-alloc
        scratch.extend(Vec::with_capacity(4)); //~ hot-path-alloc
        scratch.extend(vec![0.0f32]); //~ hot-path-alloc
        scratch
    }

    // The allow hatch documents intentional O(1) CoW handle clones:
    pub fn forward_ws(&mut self, x: &Tensor) -> Tensor {
        // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone
        self.cached = Some(x.clone());
        Tensor
    }

    // The same calls outside forward/backward are not hot-path findings:
    pub fn reset(&mut self) {
        let _scratch = Tensor::zeros([4]);
        let _copy = self.cached.clone();
        let _buf: Vec<f32> = Vec::new();
        let _lit = vec![0.0f32];
    }
}

impl Tensor {
    pub fn data(&self) -> &[f32] {
        &[]
    }
}

pub trait Backprop {
    // Bodyless trait declarations produce nothing.
    fn backward(&mut self, grad: &Tensor) -> Tensor;
}
