//! Fixture: the panic-freedom family — and the test-code exemption that
//! keeps it out of `#[cfg(test)]` / `#[test]` regions.

pub fn panicky(values: &[f32], maybe: Option<usize>) -> f32 {
    let i = maybe.unwrap(); //~ unwrap
    let j = maybe.expect("index provided"); //~ expect
    if i > values.len() {
        panic!("index {i} out of range"); //~ panic
    }
    if j == usize::MAX {
        unreachable!(); //~ panic
    }
    values[i] + values[j] //~ index index
}

pub fn chained(matrix: &[Vec<f32>]) -> f32 {
    // Chained and call-adjacent indexing each fire once per `[`.
    matrix[0][1] + first_row(matrix)[2] //~ index index index
}

fn first_row(matrix: &[Vec<f32>]) -> &[f32] {
    matrix.first().map(Vec::as_slice).unwrap_or(&[])
}

pub fn not_indexing(n: usize) -> Vec<u8> {
    // Attributes, macro brackets, array types and array literals all
    // contain `[` without being indexing expressions: no diagnostics.
    #[allow(clippy::identity_op)]
    let literal = [0u8; 4];
    let ty: [u8; 2] = [1, 2];
    let grown = vec![literal[0]; n]; //~ index
    let _ = ty;
    grown
}

#[cfg(test)]
mod tests {
    // Inside test code, panicking is the failure report: all silent.
    #[test]
    fn unwraps_freely() {
        let v = Some(3usize);
        assert_eq!(v.unwrap(), 3);
        let arr = [1, 2, 3];
        assert_eq!(arr[v.expect("is some")], 0);
        panic!("even this is fine in a test");
    }
}
