//! Golden tests: every lint family must fire exactly where the fixture
//! corpus says it does — and nowhere else — plus the live-workspace gate.
//!
//! Fixture marker syntax (rustc-UI inspired, in line comments):
//!
//! * `//~ name [name …]`  — expect those lints on the **same** line;
//! * `//~^ name [name …]` — expect them on the **previous** line;
//! * `//~v name [name …]` — expect them on the **next** line.
//!
//! The comparison is an exact multiset match of `(line, lint)` pairs, so
//! fixtures simultaneously prove that lints fire on violating code and
//! stay silent on the conforming code between the markers.

use std::path::Path;
use xtask::lints::{lint_source, Scope};

/// Parses `//~` expectation markers out of a fixture source.
fn expected_findings(src: &str) -> Vec<(u32, String)> {
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(at) = line.find("//~") else { continue };
        let rest = &line[at + 3..];
        let (target, names) = match rest.as_bytes().first() {
            Some(b'^') => (idx as u32, &rest[1..]),
            Some(b'v') => (idx as u32 + 2, &rest[1..]),
            _ => (idx as u32 + 1, rest),
        };
        for name in names.split_whitespace() {
            expected.push((target, name.to_string()));
        }
    }
    expected.sort();
    expected
}

fn check_fixture(name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let mut actual: Vec<(u32, String)> = lint_source(&src, Scope::all())
        .into_iter()
        .map(|v| (v.line, v.lint.name().to_string()))
        .collect();
    actual.sort();
    assert_eq!(
        actual,
        expected_findings(&src),
        "diagnostics for fixture {name} diverge from its //~ markers"
    );
}

#[test]
fn determinism_fixture_matches_markers() {
    check_fixture("determinism.rs");
}

#[test]
fn panic_freedom_fixture_matches_markers() {
    check_fixture("panic_freedom.rs");
}

#[test]
fn numeric_fixture_matches_markers() {
    check_fixture("numeric.rs");
}

#[test]
fn allows_fixture_matches_markers() {
    check_fixture("allows.rs");
}

#[test]
fn unordered_iter_fixture_matches_markers() {
    check_fixture("unordered_iter.rs");
}

#[test]
fn unsafe_island_fixture_matches_markers() {
    check_fixture("unsafe_island.rs");
}

#[test]
fn hot_path_fixture_matches_markers() {
    check_fixture("hot_path.rs");
}

#[test]
fn artifact_io_fixture_matches_markers() {
    check_fixture("artifact_io.rs");
}

#[test]
fn clean_fixture_is_silent() {
    // Belt and braces: the marker comparison would catch stray findings,
    // but assert the stronger statement explicitly.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/clean.rs");
    let src = std::fs::read_to_string(&path).expect("clean fixture readable");
    assert!(
        expected_findings(&src).is_empty(),
        "clean fixture must carry no markers"
    );
    let findings = lint_source(&src, Scope::all());
    assert!(findings.is_empty(), "clean fixture produced {findings:?}");
}

#[test]
fn out_of_scope_files_are_skipped() {
    let src = "pub fn f(v: Vec<u32>) -> u32 { v.unwrap()[0] }";
    assert!(lint_source(src, Scope::none()).is_empty());
}

/// The repo-wide gate: the live workspace must lint clean against its
/// checked-in baseline. A failure here means a new violation slipped in —
/// fix it, justify it with `xtask:allow`, or (for legacy debt only)
/// regenerate the baseline.
#[test]
fn live_workspace_is_clean_against_baseline() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/xtask");
    let baseline = xtask::load_baseline(&root).expect("baseline parses");
    assert!(
        baseline.total() > 0,
        "checked-in baseline unexpectedly empty"
    );
    let run = xtask::run_lint(&root, &baseline).expect("workspace lint runs");
    let fresh: Vec<String> = run
        .diagnostics
        .iter()
        .filter(|d| !d.baselined)
        .map(|d| d.render_text())
        .collect();
    assert!(fresh.is_empty(), "new lint findings:\n{}", fresh.join("\n"));
}
