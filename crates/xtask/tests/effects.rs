//! Effect-analysis integration tests: the fixture mini-workspace under
//! `tests/effect_fixtures/`, the live-workspace gate, and a seeded
//! regression on a mutated copy of the real sources.

use std::path::{Path, PathBuf};
use xtask::graph::{analyze_workspace, check_against_baseline, Analysis, EffectPolicy};
use xtask::{find_workspace_root, is_crate_src, load_baseline, workspace_rs_files};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/effect_fixtures")
}

/// The fixture policy mirrors the real one in miniature: one io island
/// file, one wall-clock island type, one named replay root.
fn fixture_policy() -> EffectPolicy {
    EffectPolicy {
        io_island_files: vec!["crates/app/src/island.rs".to_string()],
        wallclock_island_prefixes: vec!["app::stopwatch::Stopwatch::".to_string()],
        unsafe_island_prefixes: Vec::new(),
        extra_root_suffixes: vec!["replay::apply_record".to_string()],
    }
}

fn fixture_analysis() -> Analysis {
    analyze_workspace(&fixture_root(), &fixture_policy()).expect("fixture workspace parses")
}

/// Violations whose root id starts with `prefix`, rendered.
fn chains_for(a: &Analysis, prefix: &str) -> Vec<(String, String)> {
    a.violations
        .iter()
        .filter(|v| v.root.starts_with(prefix))
        .map(|v| (v.effect.name().to_string(), v.render_chain()))
        .collect()
}

#[test]
fn direct_seed_in_job_body_is_flagged() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::spawn_direct::{closure@");
    assert_eq!(got.len(), 1, "one wall-clock violation: {got:?}");
    assert_eq!(got[0].0, "wall-clock");
    assert!(
        got[0].1.contains("Instant::now"),
        "chain names the seed: {}",
        got[0].1
    );
}

#[test]
fn two_hop_entropy_reports_the_full_chain() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::spawn_two_hop::{closure@");
    assert_eq!(got.len(), 1, "one entropy violation: {got:?}");
    assert_eq!(got[0].0, "entropy");
    assert!(
        got[0]
            .1
            .contains("app::util::step_one → app::util::step_two → thread_rng"),
        "chain walks both hops: {}",
        got[0].1
    );
}

#[test]
fn method_call_seed_propagates() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::spawn_method::{closure@");
    assert_eq!(got.len(), 1, "one wall-clock violation: {got:?}");
    assert!(
        got[0].1.contains("app::widget::Widget::sample") && got[0].1.contains("SystemTime::now"),
        "chain goes through the method: {}",
        got[0].1
    );
}

#[test]
fn clean_and_islanded_jobs_are_silent() {
    let a = fixture_analysis();
    for prefix in [
        "app::spawn_clean::{closure@",
        "app::spawn_island_ok::{closure@",
        "app::spawn_stopwatch_ok::{closure@",
        "app::spawn_allowed::{closure@",
    ] {
        let got = chains_for(&a, prefix);
        assert!(got.is_empty(), "{prefix}… must be clean, got {got:?}");
    }
}

#[test]
fn island_does_not_sanction_the_callers_own_seed() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::spawn_launder::{closure@");
    assert_eq!(got.len(), 1, "one io violation: {got:?}");
    assert_eq!(got[0].0, "io");
    assert!(
        got[0].1.contains("fs::write") && got[0].1.contains("lib.rs"),
        "the job's own write is the seed, not the island's: {}",
        got[0].1
    );
}

#[test]
fn island_absorbs_only_its_chartered_effect() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::spawn_stopwatch_entropy::{closure@");
    assert_eq!(got.len(), 1, "one entropy violation: {got:?}");
    assert_eq!(got[0].0, "entropy");
    assert!(
        got[0]
            .1
            .contains("app::stopwatch::Stopwatch::bad_entropy → thread_rng"),
        "entropy escapes the wall-clock island: {}",
        got[0].1
    );
}

#[test]
fn named_extra_root_is_enforced() {
    let a = fixture_analysis();
    let got = chains_for(&a, "app::replay::apply_record");
    assert_eq!(got.len(), 1, "one unordered-iter violation: {got:?}");
    assert_eq!(got[0].0, "unordered-iter");
    // The ordered twin is not even a root (suffix does not match).
    assert!(
        !a.nodes
            .get("app::replay::apply_record_ordered")
            .expect("ordered twin parsed")
            .is_root
    );
}

#[test]
fn defective_effect_allow_is_reported() {
    let a = fixture_analysis();
    let decoys: Vec<&str> = a
        .allow_findings
        .iter()
        .filter(|f| f.file == "crates/app/src/util.rs")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(decoys.len(), 1, "exactly the decoy: {decoys:?}");
    assert!(
        decoys[0].contains("sanctions no effect seed"),
        "unused-allow message: {}",
        decoys[0]
    );
    // The *used* allow in `timed_step` is not reported.
    assert!(!decoys[0].contains("wall-clock"));
}

#[test]
fn fixture_root_census_is_exact() {
    let a = fixture_analysis();
    let roots: Vec<&String> = a
        .nodes
        .iter()
        .filter(|(_, n)| n.is_root)
        .map(|(id, _)| id)
        .collect();
    // Nine spawn closures + the named replay root.
    assert_eq!(roots.len(), 10, "roots: {roots:?}");
}

/// The repo-wide gate: the live workspace's parallel job roots and
/// journal replay path must infer effect-free (through the sanctioned
/// islands), with zero entries needed in the baseline's `effects`
/// section and zero allow findings.
#[test]
fn live_workspace_roots_are_effect_free() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/xtask");
    let baseline = load_baseline(&root).expect("baseline parses");
    assert!(
        baseline.effects.is_empty(),
        "the effects ratchet must stay empty — new violations need fixing, not baselining"
    );
    let a = analyze_workspace(&root, &EffectPolicy::default()).expect("live analysis runs");
    let roots = a.nodes.values().filter(|n| n.is_root).count();
    assert!(roots >= 5, "parallel roots went missing (found {roots})");
    let check = check_against_baseline(&a, &baseline);
    let fresh = check.fresh.join("\n");
    assert!(check.ok(&a.allow_findings), "effect gate failed:\n{fresh}");
}

/// The acceptance drill: seed a regression in a *copy* of the live
/// sources — a helper transitively called from a parallel job body
/// starts reading the wall clock — and assert the analysis flags it
/// with the full call chain.
#[test]
fn seeded_regression_in_live_sources_is_caught() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/xtask");
    let tmp = std::env::temp_dir().join(format!("xtask-effect-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    // Copy the crate sources (and manifests, for crate-name mapping).
    let mut copied_manifests = std::collections::BTreeSet::new();
    for rel in workspace_rs_files(&root).expect("live file walk") {
        if !is_crate_src(&rel) {
            continue;
        }
        let dst = tmp.join(&rel);
        std::fs::create_dir_all(dst.parent().expect("src files have parents"))
            .expect("mkdir for copy");
        std::fs::copy(root.join(&rel), &dst).expect("copy source file");
        let dir = rel.split('/').nth(1).expect("crates/<name>/…").to_string();
        if copied_manifests.insert(dir.clone()) {
            let manifest = Path::new("crates").join(&dir).join("Cargo.toml");
            if root.join(&manifest).exists() {
                std::fs::copy(root.join(&manifest), tmp.join(&manifest))
                    .expect("copy crate manifest");
            }
        }
    }

    // Mutation 1: a new helper in core's crate root that reads the clock.
    let lib = tmp.join("crates/core/src/lib.rs");
    let mut lib_src = std::fs::read_to_string(&lib).expect("copied core lib readable");
    lib_src.push_str(
        "\npub fn effect_probe() -> u32 {\n    \
         let t = std::time::Instant::now();\n    t.elapsed().subsec_nanos()\n}\n",
    );
    std::fs::write(&lib, lib_src).expect("write mutated lib");

    // Mutation 2: call it from inside a parallel_map_resilient job body.
    let res = tmp.join("crates/core/src/resilience.rs");
    let res_src = std::fs::read_to_string(&res).expect("copied resilience readable");
    let anchor = "outcome.ensure_finite()?;";
    assert!(
        res_src.contains(anchor),
        "mutation anchor `{anchor}` vanished from resilience.rs — \
         re-point the drill at another statement inside the characterize job closure"
    );
    let mutated = res_src.replacen(
        anchor,
        "outcome.ensure_finite()?; crate::effect_probe();",
        1,
    );
    std::fs::write(&res, mutated).expect("write mutated resilience");

    let a = analyze_workspace(&tmp, &EffectPolicy::default()).expect("mutated analysis runs");
    std::fs::remove_dir_all(&tmp).expect("cleanup temp copy");

    let hits: Vec<String> = a
        .violations
        .iter()
        .map(|v| format!("[{}] {}", v.effect.name(), v.render_chain()))
        .collect();
    assert_eq!(hits.len(), 1, "exactly the seeded regression: {hits:?}");
    assert!(
        hits[0].starts_with("[wall-clock] reduce_core::resilience::")
            && hits[0].contains("{closure@")
            && hits[0].contains("→ reduce_core::effect_probe → Instant::now"),
        "full chain from job root through the helper to the seed: {}",
        hits[0]
    );
}
