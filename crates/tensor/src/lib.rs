//! # reduce-tensor
//!
//! Dense `f32` tensor library underpinning the Reduce (DATE 2023)
//! reproduction. It provides exactly the numeric substrate a CPU
//! reimplementation of fault-aware DNN retraining needs:
//!
//! * [`Tensor`] — contiguous row-major storage with seeded random
//!   initialisers, elementwise maps and reductions;
//! * [`Shape`] — rank/volume/stride arithmetic with typed errors;
//! * [`ops`] — cache-blocked GEMM kernels (plain, `AᵀB`, `ABᵀ`), im2col/
//!   col2im convolution lowering, pooling with exact adjoints, and stable
//!   softmax kernels.
//!
//! Every stochastic constructor takes an explicit seed so experiments built
//! on top are bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use reduce_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), reduce_tensor::TensorError> {
//! // A tiny dense layer: y = x·Wᵀ + b
//! let x = Tensor::rand_uniform([4, 3], -1.0, 1.0, 0);
//! let w = Tensor::rand_uniform([2, 3], -1.0, 1.0, 1);
//! let b = Tensor::zeros([2]);
//! let y = ops::add_bias_rows(&ops::matmul_nt(&x, &w)?, &b)?;
//! assert_eq!(y.dims(), &[4, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
// Tests may unwrap/expect freely: a panic there *is* the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod error;
pub mod ops;
mod shape;
mod tensor;

pub use error::{Result, TensorError};
pub use shape::Shape;
pub use tensor::Tensor;
