//! Shapes and row-major index arithmetic.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A shape is an ordered list of dimension extents. The empty shape `[]`
/// denotes a scalar (volume 1).
///
/// # Examples
///
/// ```
/// use reduce_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape `[]`.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0.get(axis).copied().ok_or(TensorError::OutOfBounds {
            what: "axis",
            index: axis,
            bound: self.0.len(),
        })
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The last dimension is contiguous; a scalar has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.0.len()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `idx.len() != rank`, and
    /// [`TensorError::OutOfBounds`] if any coordinate exceeds its extent.
    pub fn offset(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.0.len() {
            return Err(TensorError::ShapeMismatch {
                op: "offset",
                lhs: self.0.clone(),
                rhs: idx.to_vec(),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.0.len()).rev() {
            if idx[i] >= self.0[i] {
                return Err(TensorError::OutOfBounds {
                    what: "coordinate",
                    index: idx[i],
                    bound: self.0[i],
                });
            }
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        Ok(off)
    }

    /// Whether this shape describes a matrix (rank 2).
    pub fn is_matrix(&self) -> bool {
        self.rank() == 2
    }

    /// Splits a rank-2 shape into `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix shapes.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.rank() != 2 {
            return Err(TensorError::InvalidArgument {
                op: "as_matrix",
                reason: format!("expected rank-2 shape, got {:?}", self.0),
            });
        }
        Ok((self.0[0], self.0[1]))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn volume_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn volume_with_zero_dim() {
        assert_eq!(Shape::from([4, 0, 2]).volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::from([2, 3, 4]);
        let mut seen = [false; 24];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).expect("valid index");
                    assert!(!seen[off], "offset collision");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn offset_rejects_wrong_rank() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.dim(1).expect("in range"), 3);
        assert!(s.dim(2).is_err());
    }

    #[test]
    fn as_matrix_checks_rank() {
        assert_eq!(Shape::from([4, 7]).as_matrix().expect("matrix"), (4, 7));
        assert!(Shape::from([4]).as_matrix().is_err());
        assert!(Shape::from([4, 7, 2]).as_matrix().is_err());
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = [1usize, 2].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2]);
    }

    #[test]
    fn display_matches_debug_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
    }
}
