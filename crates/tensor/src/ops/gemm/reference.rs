//! Reference GEMM kernels: the correctness oracle and the small-shape
//! fallback.
//!
//! * [`naive_into`] — the textbook triple loop, one dot product per
//!   output element. Never used in production; it is the oracle every
//!   other kernel is checked against (by the `reduce-bench` harness and
//!   the property tests) and deliberately has no blocking or skipping
//!   cleverness to get wrong.
//! * [`blocked_into`] — the pre-packing production kernels: cache-blocked
//!   over the reduction dimension with an `ikj` loop order (plus the
//!   exact-zero skip that makes FAP-masked operands cheap). This is what
//!   [`super::dispatch_into`] still runs for shapes too small to
//!   amortise packing, and the baseline the kernel-comparison harness
//!   measures speedups against.
//!
//! Both accumulate every output element in ascending reduction order
//! with separate multiply-then-add, so their results are bit-identical
//! to each other; the packed kernel fuses its multiply-adds and agrees
//! within tolerance instead (see the determinism and accuracy notes in
//! [`super`]).

use super::{check_out, GemmVariant};
use crate::error::Result;
use crate::tensor::Tensor;

/// Reduction-dimension block size of the blocked kernels; sized so one
/// `A`-row block plus the output row fit comfortably in L1.
pub(crate) const BLOCK_K: usize = 64;

/// The textbook triple loop for `variant`, writing into a pre-zeroed
/// `out`. The correctness oracle for the harness and property tests.
///
/// # Errors
///
/// Returns the usual rank/shape errors, naming `gemm_naive_into`.
pub fn naive_into(variant: GemmVariant, a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k, n) = variant.problem_size("gemm_naive_into", a, b)?;
    check_out("gemm_naive_into", out, m, n)?;
    out.fill_zero();
    naive_slices(variant, m, k, n, a.data(), b.data(), out.data_mut());
    Ok(())
}

/// The pre-packing blocked kernels for `variant`, writing into a
/// pre-zeroed `out`. The harness baseline and small-shape fallback.
///
/// # Errors
///
/// Returns the usual rank/shape errors, naming `gemm_blocked_into`.
pub fn blocked_into(variant: GemmVariant, a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k, n) = variant.problem_size("gemm_blocked_into", a, b)?;
    check_out("gemm_blocked_into", out, m, n)?;
    out.fill_zero();
    blocked_slices(variant, m, k, n, a.data(), b.data(), out.data_mut());
    Ok(())
}

/// Slice-level naive kernel over the logical `(m, k, n)` problem; `cd`
/// must be pre-zeroed.
pub(crate) fn naive_slices(
    variant: GemmVariant,
    m: usize,
    k: usize,
    n: usize,
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
) {
    let ((rsa, csa), (rsb, csb)) = variant.strides(m, k, n);
    for (i, crow) in cd.chunks_exact_mut(n.max(1)).enumerate().take(m) {
        for (j, c) in crow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = ad.get(i * rsa + p * csa).copied().unwrap_or(0.0);
                let bv = bd.get(p * rsb + j * csb).copied().unwrap_or(0.0);
                acc += av * bv;
            }
            *c = acc;
        }
    }
}

/// Slice-level blocked kernels; `cd` must be pre-zeroed. These are the
/// original `matmul*_into` loop bodies, moved here verbatim when the
/// packed path became the large-shape default.
pub(crate) fn blocked_slices(
    variant: GemmVariant,
    m: usize,
    k: usize,
    n: usize,
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
) {
    match variant {
        GemmVariant::NN => blocked_nn(m, k, n, ad, bd, cd),
        GemmVariant::TN => blocked_tn(m, k, n, ad, bd, cd),
        GemmVariant::NT => blocked_nt(m, k, n, ad, bd, cd),
    }
}

/// `C += A · B`, cache-blocked over `k`, `ikj` order: the innermost loop
/// is a contiguous axpy over the output row, which LLVM vectorises.
fn blocked_nn(m: usize, k: usize, n: usize, ad: &[f32], bd: &[f32], cd: &mut [f32]) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..m {
            // xtask:allow(index): i < m and p < k index m*k / k*n / m*n buffers validated by the entry points
            let crow = &mut cd[i * n..(i + 1) * n];
            for p in k0..k1 {
                // xtask:allow(index): same bounds as the row slices above
                let aip = ad[i * k + p];
                // xtask:allow(float-eq): exact-zero skip; FAP masks write literal 0.0
                if aip == 0.0 {
                    continue;
                }
                // xtask:allow(index): p < k over a k*n buffer
                let brow = &bd[p * n..(p + 1) * n];
                for (cx, &bx) in crow.iter_mut().zip(brow) {
                    *cx += aip * bx;
                }
            }
        }
    }
}

/// `C += Aᵀ · B` as a sequence of rank-1 updates: for each shared row
/// `p`, `C += a_p ⊗ b_p`.
fn blocked_tn(m: usize, k: usize, n: usize, ad: &[f32], bd: &[f32], cd: &mut [f32]) {
    for p in 0..k {
        // xtask:allow(index): p < k over k*m / k*n buffers validated by the entry points
        let arow = &ad[p * m..(p + 1) * m];
        // xtask:allow(index): same bound as arow
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &ax) in arow.iter().enumerate() {
            // xtask:allow(float-eq): exact-zero skip; FAP masks write literal 0.0
            if ax == 0.0 {
                continue;
            }
            // xtask:allow(index): i < m over an m*n buffer
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cx, &bx) in crow.iter_mut().zip(brow) {
                *cx += ax * bx;
            }
        }
    }
}

/// `C = A · Bᵀ` as row-by-row dot products over the shared contiguous
/// `k` axis.
fn blocked_nt(m: usize, k: usize, n: usize, ad: &[f32], bd: &[f32], cd: &mut [f32]) {
    for i in 0..m {
        // xtask:allow(index): i < m over m*k / m*n buffers validated by the entry points
        let arow = &ad[i * k..(i + 1) * k];
        // xtask:allow(index): same bound as arow
        let crow = &mut cd[i * n..(i + 1) * n];
        for (j, cx) in crow.iter_mut().enumerate() {
            // xtask:allow(index): j < n over an n*k buffer
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&ax, &bx) in arow.iter().zip(brow) {
                acc += ax * bx;
            }
            *cx = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (variant, adim, bdim) in [
            (GemmVariant::NN, [7, 130], [130, 5]),
            (GemmVariant::TN, [130, 7], [130, 5]),
            (GemmVariant::NT, [7, 130], [5, 130]),
        ] {
            let a = Tensor::rand_uniform(adim, -1.0, 1.0, 3);
            let b = Tensor::rand_uniform(bdim, -1.0, 1.0, 4);
            let mut blocked = Tensor::zeros([7, 5]);
            blocked_into(variant, &a, &b, &mut blocked).expect("conformable");
            let mut naive = Tensor::zeros([7, 5]);
            naive_into(variant, &a, &b, &mut naive).expect("conformable");
            assert_eq!(blocked, naive, "variant {}", variant.name());
        }
    }

    #[test]
    fn zero_skip_is_bitwise_neutral() {
        // A sparse (FAP-masked) left operand: the skip must not change a
        // single bit relative to the oracle that never skips.
        let mut a = Tensor::rand_uniform([9, 70], -1.0, 1.0, 5);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::rand_uniform([70, 6], -1.0, 1.0, 6);
        let mut blocked = Tensor::zeros([9, 6]);
        blocked_into(GemmVariant::NN, &a, &b, &mut blocked).expect("conformable");
        let mut naive = Tensor::zeros([9, 6]);
        naive_into(GemmVariant::NN, &a, &b, &mut naive).expect("conformable");
        assert_eq!(blocked, naive);
    }

    #[test]
    fn entry_points_name_themselves() {
        let a = Tensor::zeros([3]);
        let b = Tensor::zeros([3, 2]);
        let mut out = Tensor::zeros([1, 2]);
        let err = naive_into(GemmVariant::NN, &a, &b, &mut out).expect_err("rank-1");
        assert!(err.to_string().contains("gemm_naive_into"));
        let err = blocked_into(GemmVariant::NN, &a, &b, &mut out).expect_err("rank-1");
        assert!(err.to_string().contains("gemm_blocked_into"));
    }
}
