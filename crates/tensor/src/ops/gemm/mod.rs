//! Packed, cache-tiled, register-blocked GEMM.
//!
//! This module is the compute core behind [`crate::ops::matmul`] and
//! friends. It is organised BLIS-style in three layers:
//!
//! * [`pack`] — copies cache-block-sized pieces of `A` and `B` into
//!   contiguous, zero-padded *panels* (`MR`-row panels of `A`, `NR`-column
//!   panels of `B`) so the innermost loops only ever touch unit-stride
//!   memory, regardless of the GEMM variant's logical transposes;
//! * [`microkernel`] — the register-blocked `MR × NR` tile kernel: a
//!   fixed-size `f32` accumulator array that LLVM keeps in vector
//!   registers (f32x4-style lanes without any `unsafe`), fed one packed
//!   `A`-panel and one packed `B`-panel;
//! * the driver in this file — loops over `NC`/`MC` cache blocks, packs,
//!   and dispatches tiles to the microkernel.
//!
//! All three GEMM variants (`NN`, `TN`, `NT`) share this single driver:
//! a variant is nothing but a `(row-stride, column-stride)` pair per
//! operand (see [`GemmVariant::strides`]), and only the packing routines
//! ever see strides. Shapes that are not multiples of the tile sizes are
//! handled by zero-padding the panels — the microkernel always computes a
//! full `MR × NR` tile and the store-back clips to the valid region.
//!
//! # Determinism and accuracy
//!
//! Every kernel in this module accumulates each output element in
//! strictly ascending reduction order, so every kernel is fully
//! deterministic: same operands, same bits out, on every run.
//!
//! [`reference::naive_into`] and [`reference::blocked_into`] both use
//! separate f32 multiply-then-add (Rust never fuses into FMA
//! implicitly) and are **bit-identical** to each other — the
//! kernel-comparison harness in `reduce-bench` gates them on exact
//! equality. [`packed_into`] instead fuses each multiply-add with
//! [`f32::mul_add`] (one rounding per MAC instead of two), which makes
//! it slightly *more* accurate than the references but not bit-identical
//! to them; the harness and the property tests gate it against the naive
//! oracle with a reduction-length-scaled tolerance.
//!
//! The packed panels span the *full* reduction dimension instead of
//! being blocked along `k` the way classic BLIS `KC` blocking would:
//! splitting `k` would sum each block into the register tile separately
//! and then add block subtotals, making the result depend on the block
//! size chosen. One register tile per output block accumulates the whole
//! chain in order, keeping the kernel's rounding a pure function of the
//! operands, at the price of pack buffers that grow with `k`
//! (`MC × k` and `k × NC` floats — comfortably cache-sized for every
//! layer shape in this framework).
//!
//! # Dispatch
//!
//! [`dispatch_into`] picks the packed path when a problem is big enough
//! to amortise packing (see [`use_packed`]) and falls back to the simpler
//! cache-blocked loops from [`reference`] for small or degenerate shapes
//! (GEMV-like `m = 1` products, tiny layers). The choice is a pure
//! function of the shape, so a given call site always takes the same
//! path and results never depend on anything but the operands.

pub(crate) mod microkernel;
pub(crate) mod pack;
pub mod reference;

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use microkernel::{MR, NR};

/// Row cache block: one packed `A` block is `MC × k` floats, sized so a
/// single `k × MR` micro-panel stays L1-resident while every `B` panel
/// of the block streams past it.
pub(crate) const MC: usize = 128;

/// Column cache block: one packed `B` block is `k × NC` floats at most,
/// streamed through the microkernel once per `MC` rows.
pub(crate) const NC: usize = 1024;

/// Below this many multiply-adds the packing overhead is not worth it
/// and [`dispatch_into`] uses the blocked reference loops instead.
pub(crate) const PACKED_MIN_MACS: usize = 16_384;

/// The three GEMM orientations the NN framework needs. The letters name
/// the storage of `A` and `B` respectively: `N` as-is, `T` transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// `C = A · B` with `A: (m, k)`, `B: (k, n)`.
    NN,
    /// `C = Aᵀ · B` with `A: (k, m)`, `B: (k, n)` — weight gradients.
    TN,
    /// `C = A · Bᵀ` with `A: (m, k)`, `B: (n, k)` — input gradients.
    NT,
}

impl GemmVariant {
    /// Short lowercase name (`nn`/`tn`/`nt`), used by the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            GemmVariant::NN => "nn",
            GemmVariant::TN => "tn",
            GemmVariant::NT => "nt",
        }
    }

    /// `((rsa, csa), (rsb, csb))`: element `a(i, p)` of the *logical*
    /// `(m, k)` left operand lives at `ad[i * rsa + p * csa]`, and
    /// element `b(p, j)` of the logical `(k, n)` right operand at
    /// `bd[p * rsb + j * csb]`. Transposition is nothing but a stride
    /// swap, which is why one packed driver serves all three variants.
    pub(crate) fn strides(self, m: usize, k: usize, n: usize) -> ((usize, usize), (usize, usize)) {
        match self {
            GemmVariant::NN => ((k, 1), (n, 1)),
            GemmVariant::TN => ((1, m), (n, 1)),
            GemmVariant::NT => ((k, 1), (1, k)),
        }
    }

    /// The logical `(m, k, n)` problem size given the stored operand
    /// shapes, after validating ranks and the shared dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] naming `op` for a
    /// non-rank-2 operand (checked *before* any dimension is read, so a
    /// rank-1 gradient reaching a backward-pass GEMM reports the actual
    /// entry point instead of a generic shape error), and
    /// [`TensorError::ShapeMismatch`] naming `op` if the shared
    /// dimensions differ.
    pub(crate) fn problem_size(
        self,
        op: &'static str,
        a: &Tensor,
        b: &Tensor,
    ) -> Result<(usize, usize, usize)> {
        let (ar, ac) = check_rank2(op, a)?;
        let (br, bc) = check_rank2(op, b)?;
        let ((m, ka), (kb, n)) = match self {
            GemmVariant::NN => ((ar, ac), (br, bc)),
            GemmVariant::TN => ((ac, ar), (br, bc)),
            GemmVariant::NT => ((ar, ac), (bc, br)),
        };
        if ka != kb {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
            });
        }
        Ok((m, ka, n))
    }
}

/// Validates that `t` is rank-2 and returns its `(rows, cols)`, with the
/// error naming the calling kernel entry point.
pub(crate) fn check_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    match t.dims() {
        &[r, c] => Ok((r, c)),
        other => Err(TensorError::InvalidArgument {
            op,
            reason: format!("expected a rank-2 operand, got shape {other:?}"),
        }),
    }
}

/// Validates the output buffer shape for an `_into` kernel, with the
/// error naming the exact entry point (`matmul_tn_into`, …) so a shape
/// bug in a backward pass is diagnosable from the message alone.
pub(crate) fn check_out(op: &'static str, out: &Tensor, m: usize, n: usize) -> Result<()> {
    if out.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: vec![m, n],
            rhs: out.dims().to_vec(),
        });
    }
    Ok(())
}

/// Whether a problem is large enough for the packed path: at least one
/// full tile in each output direction and enough multiply-adds to
/// amortise packing. A pure function of the shape — never of the data —
/// so dispatch is deterministic.
pub(crate) fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && k >= 2 && m * k * n >= PACKED_MIN_MACS
}

/// Computes `C += op(A) · op(B)` over a **pre-zeroed** (or accumulating)
/// output slice, choosing between the packed and blocked kernels by
/// shape. This is the single compute entry behind every `matmul*`
/// public function.
pub(crate) fn dispatch_into(
    variant: GemmVariant,
    m: usize,
    k: usize,
    n: usize,
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
) {
    if use_packed(m, k, n) {
        let ((rsa, csa), (rsb, csb)) = variant.strides(m, k, n);
        gemm_packed(m, k, n, ad, rsa, csa, bd, rsb, csb, cd);
    } else {
        reference::blocked_slices(variant, m, k, n, ad, bd, cd);
    }
}

/// The packed, cache-tiled, register-blocked driver. `cd` must hold
/// `m * n` elements and is accumulated into (callers zero it first).
///
/// Loop structure, outermost first: `NC` column blocks of `B` (each
/// packed once into `bpack`), `MC` row blocks of `A` (each packed once
/// into `apack`), then `MR × NR` register tiles. Panels span the full
/// reduction dimension so each output element is one ascending-`k`
/// accumulation chain — the bit-exactness invariant of the module docs.
/// The packed `A` micro-panel is the hot operand: it stays in L1 while
/// every `B` panel of the block streams past it.
// BLAS-style kernel signature: problem size + two strided operands + out.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    ad: &[f32],
    rsa: usize,
    csa: usize,
    bd: &[f32],
    rsb: usize,
    csb: usize,
    cd: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // xtask:allow(hot-path-alloc): pack buffers are O(k·(MC+NC)) and amortised over O(m·k·n) multiply-adds; tensor-level callers reuse `out`, the packing copies are the price of unit-stride inner loops
    let mut apack: Vec<f32> = Vec::new();
    // xtask:allow(hot-path-alloc): second half of the same amortised pack workspace
    let mut bpack: Vec<f32> = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = (jc + NC).min(n) - jc;
        pack::pack_b(bd, rsb, csb, 0, jc, k, nc, &mut bpack);
        for ic in (0..m).step_by(MC) {
            let mc = (ic + MC).min(m) - ic;
            pack::pack_a(ad, rsa, csa, ic, 0, mc, k, &mut apack);
            for (qa, ap) in apack.chunks_exact(k * MR).enumerate() {
                let i0 = ic + qa * MR;
                let mr_v = MR.min(mc - qa * MR);
                for (qb, bp) in bpack.chunks_exact(k * NR).enumerate() {
                    let j0 = jc + qb * NR;
                    let nr_v = NR.min(nc - qb * NR);
                    let acc = microkernel::microtile(ap, bp);
                    microkernel::store_tile(&acc, cd, n, i0, j0, mr_v, nr_v);
                }
            }
        }
    }
}

/// Runs the packed kernel for `variant` into `out` regardless of shape
/// (no size dispatch): the kernel-comparison harness and the property
/// tests use this to exercise the packed path on degenerate shapes
/// (`m = 1`, `n = 1`, `k = 1`) that production dispatch would route to
/// the blocked loops.
///
/// `out` is zeroed first. Results agree with [`reference::naive_into`]
/// within a reduction-length-scaled tolerance and are deterministic (see
/// the module docs on determinism and accuracy).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-rank-2 operands and
/// [`TensorError::ShapeMismatch`] for non-conforming shapes, naming
/// `gemm_packed_into`.
pub fn packed_into(variant: GemmVariant, a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k, n) = variant.problem_size("gemm_packed_into", a, b)?;
    check_out("gemm_packed_into", out, m, n)?;
    out.fill_zero();
    let ((rsa, csa), (rsb, csb)) = variant.strides(m, k, n);
    gemm_packed(
        m,
        k,
        n,
        a.data(),
        rsa,
        csa,
        b.data(),
        rsb,
        csb,
        out.data_mut(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand(dims: [usize; 2], seed: u64) -> Tensor {
        Tensor::rand_uniform(dims, -1.0, 1.0, seed)
    }

    /// Tolerance for FMA-vs-separate-rounding drift over a length-`k`
    /// reduction of roughly unit-magnitude values. A real kernel bug
    /// (wrong element, missed tile, bad stride) shows up as O(1) error,
    /// orders of magnitude past this.
    pub(crate) fn fma_tol(k: usize) -> f32 {
        1e-4f32.max(k as f32 * 1e-5)
    }

    #[test]
    fn strides_address_the_logical_operands() {
        // NN: a(i, p) at i*k + p; TN reads the transpose in place.
        let ((rsa, csa), (rsb, csb)) = GemmVariant::TN.strides(3, 5, 2);
        assert_eq!((rsa, csa), (1, 3));
        assert_eq!((rsb, csb), (2, 1));
        let ((rsa, csa), (rsb, csb)) = GemmVariant::NT.strides(3, 5, 2);
        assert_eq!((rsa, csa), (5, 1));
        assert_eq!((rsb, csb), (1, 5));
    }

    #[test]
    fn problem_size_validates_rank_first() {
        let a = Tensor::zeros([6]);
        let b = Tensor::zeros([3, 2]);
        let err = GemmVariant::NN
            .problem_size("matmul_tn_into", &a, &b)
            .expect_err("rank-1 lhs");
        let msg = err.to_string();
        assert!(msg.contains("matmul_tn_into"), "names the entry: {msg}");
        assert!(msg.contains("rank-2"), "explains the rank: {msg}");
    }

    #[test]
    fn problem_size_checks_the_shared_dim() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(GemmVariant::NN.problem_size("matmul", &a, &b).is_err());
        // TN shares the *row* count of both operands.
        let at = Tensor::zeros([4, 2]);
        assert!(GemmVariant::TN.problem_size("matmul_tn", &at, &b).is_ok());
    }

    #[test]
    fn packed_matches_naive_on_tile_edges() {
        // Shapes straddling every tile boundary: below, at, and just past
        // MR/NR/KC multiples.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (MR - 1, 3, NR - 1),
            (MR, 256, NR),
            (MR + 1, 257, NR + 1),
            (2 * MR + 3, 517, 2 * NR + 7),
            (MC + MR + 1, 259, NR + 3),
        ] {
            for (variant, adim, bdim) in [
                (GemmVariant::NN, [m, k], [k, n]),
                (GemmVariant::TN, [k, m], [k, n]),
                (GemmVariant::NT, [m, k], [n, k]),
            ] {
                let a = rand(adim, 11);
                let b = rand(bdim, 23);
                let mut packed = Tensor::full([m, n], f32::NAN);
                packed_into(variant, &a, &b, &mut packed).expect("conformable");
                let mut naive = Tensor::zeros([m, n]);
                reference::naive_into(variant, &a, &b, &mut naive).expect("conformable");
                assert!(
                    packed.approx_eq(&naive, fma_tol(k)),
                    "variant {} shape {m}x{k}x{n}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn dispatch_is_a_pure_shape_function() {
        assert!(!use_packed(1, 512, 512), "GEMV stays on the blocked path");
        assert!(!use_packed(512, 512, 1), "GEMV stays on the blocked path");
        assert!(!use_packed(8, 8, 8), "tiny products stay blocked");
        assert!(use_packed(64, 96, 48), "layer-sized GEMMs pack");
        assert!(use_packed(256, 256, 256));
    }

    #[test]
    fn zero_sized_problems_are_no_ops() {
        for variant in [GemmVariant::NN, GemmVariant::TN, GemmVariant::NT] {
            let (adim, bdim) = match variant {
                GemmVariant::NN => ([0, 3], [3, 2]),
                GemmVariant::TN => ([3, 0], [3, 2]),
                GemmVariant::NT => ([0, 3], [2, 3]),
            };
            let a = Tensor::zeros(adim);
            let b = Tensor::zeros(bdim);
            let mut out = Tensor::zeros([0, 2]);
            packed_into(variant, &a, &b, &mut out).expect("conformable");
            assert_eq!(out.dims(), &[0, 2]);
        }
        // k == 0: the output is all zeros.
        let a = Tensor::zeros([2, 0]);
        let b = Tensor::zeros([0, 3]);
        let mut out = Tensor::full([2, 3], 7.0);
        packed_into(GemmVariant::NN, &a, &b, &mut out).expect("conformable");
        assert_eq!(out, Tensor::zeros([2, 3]));
    }
}
