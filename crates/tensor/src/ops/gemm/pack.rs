//! Panel packing: strided cache blocks → contiguous, zero-padded panels.
//!
//! The packers are the only code in the GEMM that ever sees an operand's
//! storage layout. They read through a `(row-stride, column-stride)`
//! pair — so a transposed variant is just a stride swap, never a copy of
//! the whole matrix — and write *panels*: [`pack_a`] interleaves `MR`
//! rows per reduction step, [`pack_b`] interleaves `NR` columns, which
//! is exactly the access order of the microkernel's register tile.
//! Partial panels at the matrix edges are padded with zeros; padded
//! lanes flow through the microkernel as exact `+0.0` contributions and
//! are clipped on store, which is how non-tile-multiple shapes stay on
//! the fast path.
//!
//! Packing is O(block area) against the O(block volume) of the compute
//! it feeds, so its cost vanishes as shapes grow; [`super::use_packed`]
//! keeps shapes too small to amortise it on the blocked loops.

use super::microkernel::{MR, NR};

/// Packs the `mc × kc` block of the logical left operand starting at
/// row `i0`, depth `p0` into `out` as `ceil(mc / MR)` panels of
/// `kc × MR` floats. Element `a(i, p)` is read from
/// `ad[(i0 + i) * rs + (p0 + p) * cs]`; rows past `mc` are zeroed.
// BLAS-style packing signature: strides + block origin + block extent are
// six independent scalars by nature; bundling them into a struct would
// only move the argument list.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a(
    ad: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    p0: usize,
    mc: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for (q, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
        let rows = MR.min(mc - q * MR);
        for (p, step) in panel.chunks_exact_mut(MR).enumerate() {
            for (r, slot) in step.iter_mut().enumerate().take(rows) {
                let i = i0 + q * MR + r;
                *slot = ad.get(i * rs + (p0 + p) * cs).copied().unwrap_or(0.0);
            }
        }
    }
}

/// Packs the `kc × nc` block of the logical right operand starting at
/// depth `p0`, column `j0` into `out` as `ceil(nc / NR)` panels of
/// `kc × NR` floats. Element `b(p, j)` is read from
/// `bd[(p0 + p) * rs + (j0 + j) * cs]`; columns past `nc` are zeroed.
#[allow(clippy::too_many_arguments)] // same shape as pack_a
pub(crate) fn pack_b(
    bd: &[f32],
    rs: usize,
    cs: usize,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    out: &mut Vec<f32>,
) {
    let panels = nc.div_ceil(NR);
    out.clear();
    out.resize(panels * kc * NR, 0.0);
    for (q, panel) in out.chunks_exact_mut(kc * NR).enumerate() {
        let cols = NR.min(nc - q * NR);
        for (p, step) in panel.chunks_exact_mut(NR).enumerate() {
            let row_base = (p0 + p) * rs;
            for (c, slot) in step.iter_mut().enumerate().take(cols) {
                let j = j0 + q * NR + c;
                *slot = bd.get(row_base + j * cs).copied().unwrap_or(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_interleaves_rows_per_step() {
        // A = [[1, 2], [3, 4]] stored row-major (rs = 2, cs = 1).
        let ad = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = Vec::new();
        pack_a(&ad, 2, 1, 0, 0, 2, 2, &mut out);
        assert_eq!(out.len(), 2 * MR, "one padded panel, two steps");
        // Step p=0 holds column 0 of A: [1, 3, pad, pad].
        assert_eq!(&out[..MR], &[1.0, 3.0, 0.0, 0.0]);
        // Step p=1 holds column 1 of A: [2, 4, pad, pad].
        assert_eq!(&out[MR..2 * MR], &[2.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_a_transposed_is_a_stride_swap() {
        // The same logical A as above but stored transposed
        // ([[1, 3], [2, 4]], shape (k=2, m=2)): rs = 1, cs = 2.
        let ad_t = [1.0f32, 3.0, 2.0, 4.0];
        let mut out_t = Vec::new();
        pack_a(&ad_t, 1, 2, 0, 0, 2, 2, &mut out_t);
        let ad = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = Vec::new();
        pack_a(&ad, 2, 1, 0, 0, 2, 2, &mut out);
        assert_eq!(out_t, out);
    }

    #[test]
    fn pack_b_interleaves_cols_per_step() {
        // B = [[1, 2, 3], [4, 5, 6]] (k=2, n=3), rs = 3, cs = 1.
        let bd = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        pack_b(&bd, 3, 1, 0, 0, 2, 3, &mut out);
        assert_eq!(out.len(), 2 * NR);
        assert_eq!(&out[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&out[3..NR], &[0.0; NR - 3], "columns padded to NR");
        assert_eq!(&out[NR..NR + 3], &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn packers_respect_block_offsets() {
        // 3x3 row-major matrix; take the 2x2 block at (1, 1).
        let md: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut out = Vec::new();
        pack_a(&md, 3, 1, 1, 1, 2, 2, &mut out);
        assert_eq!(&out[..2], &[4.0, 7.0], "step 0 = column 1, rows 1-2");
        assert_eq!(&out[MR..MR + 2], &[5.0, 8.0]);
        pack_b(&md, 3, 1, 1, 1, 2, 2, &mut out);
        assert_eq!(&out[..2], &[4.0, 5.0], "step 0 = row 1, cols 1-2");
        assert_eq!(&out[NR..NR + 2], &[7.0, 8.0]);
    }

    #[test]
    fn multi_panel_packing_splits_rows() {
        // mc = MR + 1 rows → two A panels, the second mostly padding.
        let rows = MR + 1;
        let ad: Vec<f32> = (0..rows).map(|i| (i + 1) as f32).collect();
        let mut out = Vec::new();
        // One column (kc = 1), column-stride irrelevant.
        pack_a(&ad, 1, 1, 0, 0, rows, 1, &mut out);
        assert_eq!(out.len(), 2 * MR);
        assert_eq!(&out[..MR], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&out[MR..], &[5.0, 0.0, 0.0, 0.0]);
    }
}
