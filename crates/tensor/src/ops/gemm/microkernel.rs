//! The register-blocked `MR × NR` tile kernel.
//!
//! [`microtile`] is the only loop in the GEMM that touches every
//! multiply-add: a `4 × 16` f32 accumulator array that LLVM keeps
//! entirely in vector registers (eight f32x8 lanes — enough independent
//! accumulation chains to hide FMA latency on two issue ports) for the
//! whole reduction loop. Everything is safe Rust: the accumulator is a
//! fixed-size array, the panels are walked with `chunks_exact`, and the
//! fixed-bound inner loops are fully unrolled and vectorised without a
//! single bounds check surviving.
//!
//! Each multiply-add is an explicit [`f32::mul_add`], compiled to one
//! fused `vfmadd` on any target with FMA (the workspace builds with
//! `target-cpu=native`, see `.cargo/config.toml`). Fusion halves the
//! arithmetic ops per MAC versus separate mul-then-add and rounds each
//! partial product once instead of twice — which is why this kernel is
//! *more* accurate than, but not bit-identical to, the reference loops
//! (see the determinism notes in [`super`]). The reduction order is
//! still strictly ascending `p` for every element, so results are fully
//! deterministic for a given build.
//!
//! Tile-size notes from the machines this was tuned on: `4 × 8` without
//! FMA saturates the two vector ALU ports but FMA then stalls on four
//! accumulator chains; `8 × 16` and larger spill the accumulator to the
//! stack and run several times slower. `4 × 16` is the sweet spot — and
//! the kernel-comparison harness in `reduce-bench` is the tool for
//! re-measuring any retune.

/// Rows per register tile (`A` panel width).
pub(crate) const MR: usize = 4;

/// Columns per register tile (`B` panel width).
pub(crate) const NR: usize = 16;

/// Computes one `MR × NR` register tile from a packed `A` micro-panel
/// (`kc × MR`, from [`super::pack::pack_a`]) and a packed `B` micro-panel
/// (`kc × NR`, from [`super::pack::pack_b`]).
///
/// Both panels interleave their tile's values per reduction step, so the
/// `p`-th `chunks_exact` window holds exactly the `MR` (resp. `NR`)
/// values needed for that step and the zip pairs them up; zero padding
/// in either panel contributes exact zeros to the accumulators.
///
/// The accumulator is a local fixed-size array returned by value: built
/// this way LLVM promotes all `MR × NR` lanes to vector registers for
/// the whole reduction loop (passing `&mut acc` in defeats that
/// promotion and made the kernel run scalar from memory). The
/// `try_into` conversions to array references are how the slice bounds
/// checks disappear from the inner loop.
#[inline]
#[allow(clippy::expect_used)] // chunks_exact guarantees the window lengths
pub(crate) fn microtile(ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        // xtask:allow(expect): chunks_exact(MR) yields exactly-MR windows, so the array conversion is statically infallible
        let arow: &[f32; MR] = arow.try_into().expect("chunks_exact yields MR");
        // xtask:allow(expect): chunks_exact(NR) yields exactly-NR windows, so the array conversion is statically infallible
        let brow: &[f32; NR] = brow.try_into().expect("chunks_exact yields NR");
        for (acc_row, &a) in acc.iter_mut().zip(arow) {
            for (c, &b) in acc_row.iter_mut().zip(brow) {
                *c = b.mul_add(a, *c);
            }
        }
    }
    acc
}

/// Adds the valid `mr_v × nr_v` region of a finished register tile into
/// the output matrix `cd` (row-major, `n` columns) at `(i0, j0)`.
/// Rows/columns beyond the valid region hold contributions of the zero
/// padding and are dropped.
#[inline]
pub(crate) fn store_tile(
    acc: &[[f32; NR]; MR],
    cd: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
    mr_v: usize,
    nr_v: usize,
) {
    for (di, acc_row) in acc.iter().enumerate().take(mr_v) {
        let start = (i0 + di) * n + j0;
        if let Some(crow) = cd.get_mut(start..start + nr_v) {
            for (c, &v) in crow.iter_mut().zip(acc_row) {
                *c += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::pack;
    use super::*;

    #[test]
    fn tile_accumulates_outer_products() {
        // kc = 2: step 0 contributes a=1 on row 0, step 1 contributes
        // a=2 on row 1; B rows are ramps.
        let kc = 2;
        let mut ap = vec![0.0f32; kc * MR];
        ap[0] = 1.0; // step 0, row 0
        ap[MR + 1] = 2.0; // step 1, row 1
        let bp: Vec<f32> = (0..kc * NR).map(|i| i as f32).collect();
        let acc = microtile(&ap, &bp);
        assert_eq!(acc[0][3], 3.0, "row 0 = 1 * B[0][j]");
        assert_eq!(acc[1][3], 2.0 * (NR + 3) as f32, "row 1 = 2 * B[1][j]");
        assert_eq!(acc[2], [0.0; NR]);
    }

    #[test]
    fn store_clips_to_the_valid_region() {
        let mut acc = [[0.0f32; NR]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * NR + j) as f32 + 1.0;
            }
        }
        // 3x5 output, tile placed at (1, 2): only 2 rows x 3 cols fit.
        let n = 5;
        let mut cd = vec![0.0f32; 3 * n];
        store_tile(&acc, &mut cd, n, 1, 2, 2, 3);
        assert_eq!(cd[n + 2..n + 5], [1.0, 2.0, 3.0]);
        let r1 = (NR + 1) as f32;
        assert_eq!(cd[2 * n + 2..2 * n + 5], [r1, r1 + 1.0, r1 + 2.0]);
        assert_eq!(cd[..n], [0.0; 5], "row above the tile untouched");
        assert_eq!(cd[n], 0.0, "columns left of the tile untouched");
    }

    #[test]
    fn panel_sizes_line_up_with_the_packers() {
        // One MR-wide and one NR-wide panel for a 1x3 step count.
        let ad = [1.0f32, 2.0, 3.0];
        let mut ap = Vec::new();
        pack::pack_a(&ad, 3, 1, 0, 0, 1, 3, &mut ap);
        let mut bp = Vec::new();
        pack::pack_b(&ad, 1, 0, 0, 0, 3, 1, &mut bp);
        let acc = microtile(&ap, &bp);
        // dot([1,2,3], [1,2,3]) lands in acc[0][0].
        assert_eq!(acc[0][0], 14.0);
        assert_eq!(acc[1][0], 0.0, "padded A rows contribute zero");
        assert_eq!(acc[0][1], 0.0, "padded B cols contribute zero");
    }
}
