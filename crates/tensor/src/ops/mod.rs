//! Numeric kernels: GEMM variants, convolution lowering, pooling, softmax.
//!
//! Most kernels come in two flavours: an allocating form (`matmul`,
//! `im2col`, …) and an `_into` form that writes into a caller-provided
//! buffer for workspace reuse on hot paths. The `_into` forms run the same
//! loop order as their allocating counterparts, so both produce
//! bit-identical results.

mod conv;
pub mod gemm;
mod matmul;
mod softmax;

pub use conv::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_backward_into, avg_pool2d_into, col2im,
    col2im_into, im2col, im2col_into, max_pool2d, max_pool2d_backward, max_pool2d_backward_into,
    max_pool2d_into, nchw_to_rows, nchw_to_rows_into, rows_to_nchw, rows_to_nchw_into,
    Conv2dGeometry, MaxPoolOutput,
};
pub use matmul::{
    add_bias_rows, add_bias_rows_in_place, dot, matmul, matmul_into, matmul_nt, matmul_nt_into,
    matmul_tn, matmul_tn_into,
};
pub use softmax::{log_softmax_rows, one_hot, softmax_rows};
