//! Numeric kernels: GEMM variants, convolution lowering, pooling, softmax.

mod conv;
mod matmul;
mod softmax;

pub use conv::{
    avg_pool2d, avg_pool2d_backward, col2im, im2col, max_pool2d, max_pool2d_backward, nchw_to_rows,
    rows_to_nchw, Conv2dGeometry, MaxPoolOutput,
};
pub use matmul::{add_bias_rows, dot, matmul, matmul_nt, matmul_tn};
pub use softmax::{log_softmax_rows, one_hot, softmax_rows};
