//! Matrix multiplication entry points.
//!
//! Three GEMM variants cover everything the NN framework needs without
//! ever materialising transposes on the hot path:
//!
//! * [`matmul`] / [`matmul_into`]       — `C = A · B`
//! * [`matmul_tn`] / [`matmul_tn_into`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] / [`matmul_nt_into`] — `C = A · Bᵀ` (input gradients)
//!
//! The `_into` variants write into a caller-provided output tensor so hot
//! loops (training epochs, fleet retraining) can reuse workspace buffers
//! instead of allocating per call. Each allocating form zeroes a fresh
//! output and calls its `_into` twin, so results are bit-identical either
//! way — and every error names the exact entry point it came from, so a
//! shape bug deep in a backward pass is diagnosable from the message.
//!
//! The compute itself lives in [`super::gemm`]: large shapes take the
//! packed, cache-tiled, register-blocked path; small and degenerate
//! shapes stay on the blocked reference loops. Dispatch is a pure
//! function of the shape, so a given call site always runs the same
//! kernel and results are fully deterministic (see the determinism and
//! accuracy notes in [`super::gemm`]).

use super::gemm::{self, GemmVariant};
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Computes `C = A · B` for rank-2 tensors `A: (m, k)` and `B: (k, n)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] if the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use reduce_tensor::{ops::matmul, Tensor};
///
/// # fn main() -> Result<(), reduce_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let id = Tensor::eye(2);
/// assert_eq!(matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, _, n) = GemmVariant::NN.problem_size("matmul", a, b)?;
    let mut c = Tensor::zeros([m, n]);
    matmul_into(a, b, &mut c)?;
    Ok(c)
}

/// Like [`matmul`] but writing into `out`, which must already have shape
/// `(m, n)`. `out` is zeroed first; results are bit-identical to
/// [`matmul`].
///
/// # Errors
///
/// Same conditions as [`matmul`], plus [`TensorError::ShapeMismatch`] for
/// a misshapen `out` — all naming `matmul_into`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    gemm_entry("matmul_into", GemmVariant::NN, a, b, out)
}

/// Computes `C = Aᵀ · B` for `A: (k, m)` and `B: (k, n)` without copying.
///
/// This is the kernel for weight gradients: `dW = Xᵀ · dY`.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, _, n) = GemmVariant::TN.problem_size("matmul_tn", a, b)?;
    let mut c = Tensor::zeros([m, n]);
    matmul_tn_into(a, b, &mut c)?;
    Ok(c)
}

/// Like [`matmul_tn`] but writing into `out` (shape `(m, n)`). `out` is
/// zeroed first; results are bit-identical to [`matmul_tn`].
///
/// # Errors
///
/// Same conditions as [`matmul_tn`], plus a shape check on `out` — all
/// naming `matmul_tn_into`.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    gemm_entry("matmul_tn_into", GemmVariant::TN, a, b, out)
}

/// Computes `C = A · Bᵀ` for `A: (m, k)` and `B: (n, k)` without copying.
///
/// This is the kernel for input gradients: `dX = dY · W` with `W: (out, in)`
/// stored row-major, i.e. `dX = dY · (Wᵀ)ᵀ`.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, _, n) = GemmVariant::NT.problem_size("matmul_nt", a, b)?;
    let mut c = Tensor::zeros([m, n]);
    matmul_nt_into(a, b, &mut c)?;
    Ok(c)
}

/// Like [`matmul_nt`] but writing into `out` (shape `(m, n)`). `out` is
/// zeroed first; results are bit-identical to [`matmul_nt`].
///
/// # Errors
///
/// Same conditions as [`matmul_nt`], plus a shape check on `out` — all
/// naming `matmul_nt_into`.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    gemm_entry("matmul_nt_into", GemmVariant::NT, a, b, out)
}

/// Shared `_into` body: validate (rank-2 first, then the shared
/// dimension, then `out` — every error naming `op`), zero the output,
/// and hand the slices to the shape-dispatched kernel.
fn gemm_entry(
    op: &'static str,
    variant: GemmVariant,
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
) -> Result<()> {
    let (m, k, n) = variant.problem_size(op, a, b)?;
    gemm::check_out(op, out, m, n)?;
    out.fill_zero();
    gemm::dispatch_into(variant, m, k, n, a.data(), b.data(), out.data_mut());
    Ok(())
}

/// Dot product of two rank-1 tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ or inputs are
/// not rank-1.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.rank() != 1 || b.rank() != 1 || a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

/// Adds a rank-1 `bias` of length `n` to every row of a `(m, n)` matrix.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the bias length differs from
/// the column count.
pub fn add_bias_rows(x: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let mut out = x.clone();
    add_bias_rows_in_place(&mut out, bias)?;
    Ok(out)
}

/// Adds a rank-1 `bias` to every row of a `(m, n)` matrix in place. The
/// allocation-free counterpart of [`add_bias_rows`]; per-element results
/// are identical.
///
/// # Errors
///
/// Same conditions as [`add_bias_rows`].
pub fn add_bias_rows_in_place(x: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (m, n) = x.shape().as_matrix()?;
    if bias.rank() != 1 || bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: x.dims().to_vec(),
            rhs: bias.dims().to_vec(),
        });
    }
    let bd = bias.data();
    let xd = x.data_mut();
    for i in 0..m {
        // xtask:allow(index): i < m over an m*n buffer
        let row = &mut xd[i * n..(i + 1) * n];
        for (r, &b) in row.iter_mut().zip(bd) {
            *r += b;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm::reference;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _) = a.shape().as_matrix().expect("matrix");
        let (_, n) = b.shape().as_matrix().expect("matrix");
        let mut out = Tensor::zeros([m, n]);
        reference::naive_into(GemmVariant::NN, a, b, &mut out).expect("conformable");
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::rand_uniform([4, 4], -1.0, 1.0, 1);
        let c = matmul(&a, &Tensor::eye(4)).expect("conformable");
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::rand_uniform([7, 13], -1.0, 1.0, 2);
        let b = Tensor::rand_uniform([13, 5], -1.0, 1.0, 3);
        let c = matmul(&a, &b).expect("conformable");
        assert_eq!(c, naive_matmul(&a, &b), "small shapes are bit-exact");
    }

    #[test]
    fn matmul_blocked_large_k() {
        // k > BLOCK_K so several blocks are exercised.
        let a = Tensor::rand_uniform([3, 200], -1.0, 1.0, 4);
        let b = Tensor::rand_uniform([200, 2], -1.0, 1.0, 5);
        let c = matmul(&a, &b).expect("conformable");
        assert_eq!(c, naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_packed_large_shapes() {
        // Big enough for the packed path, with edge tiles on every axis.
        let a = Tensor::rand_uniform([67, 129], -1.0, 1.0, 6);
        let b = Tensor::rand_uniform([129, 43], -1.0, 1.0, 7);
        let c = matmul(&a, &b).expect("conformable");
        assert!(
            c.approx_eq(&naive_matmul(&a, &b), 1e-3),
            "packed path agrees with the oracle"
        );
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn errors_name_the_entry_point() {
        let rank1 = Tensor::zeros([3]);
        let mat = Tensor::zeros([3, 2]);
        let mut out = Tensor::zeros([2, 2]);
        let err = matmul_tn_into(&rank1, &mat, &mut out).expect_err("rank-1 lhs");
        assert!(err.to_string().contains("matmul_tn_into"), "{err}");
        let err = matmul_nt_into(&mat, &rank1, &mut out).expect_err("rank-1 rhs");
        assert!(err.to_string().contains("matmul_nt_into"), "{err}");
        let err = matmul(&rank1, &mat).expect_err("rank-1 lhs");
        assert!(err.to_string().contains("to matmul:"), "{err}");
        // A misshapen out names the _into entry too.
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([3, 2]);
        let mut bad = Tensor::zeros([3, 2]);
        let err = matmul_into(&a, &b, &mut bad).expect_err("bad out");
        assert!(err.to_string().contains("matmul_into"), "{err}");
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::rand_uniform([9, 4], -1.0, 1.0, 6);
        let b = Tensor::rand_uniform([9, 6], -1.0, 1.0, 7);
        let via_kernel = matmul_tn(&a, &b).expect("conformable");
        let via_copy = matmul(&a.transpose().expect("matrix"), &b).expect("conformable");
        assert!(via_kernel.approx_eq(&via_copy, 1e-4));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::rand_uniform([5, 8], -1.0, 1.0, 8);
        let b = Tensor::rand_uniform([3, 8], -1.0, 1.0, 9);
        let via_kernel = matmul_nt(&a, &b).expect("conformable");
        let via_copy = matmul(&a, &b.transpose().expect("matrix")).expect("conformable");
        assert!(via_kernel.approx_eq(&via_copy, 1e-4));
    }

    #[test]
    fn into_variants_bit_identical_and_reject_bad_out() {
        let a = Tensor::rand_uniform([6, 70], -1.0, 1.0, 10);
        let b = Tensor::rand_uniform([70, 5], -1.0, 1.0, 11);
        // Dirty, reused output buffer: results must still match exactly.
        let mut out = Tensor::full([6, 5], f32::NAN);
        matmul_into(&a, &b, &mut out).expect("conformable");
        assert_eq!(out, matmul(&a, &b).expect("conformable"));

        let at = Tensor::rand_uniform([70, 6], -1.0, 1.0, 12);
        let mut out_tn = Tensor::full([6, 5], 3.0);
        matmul_tn_into(&at, &b, &mut out_tn).expect("conformable");
        assert_eq!(out_tn, matmul_tn(&at, &b).expect("conformable"));

        let bt = Tensor::rand_uniform([5, 70], -1.0, 1.0, 13);
        let mut out_nt = Tensor::full([6, 5], -7.0);
        matmul_nt_into(&a, &bt, &mut out_nt).expect("conformable");
        assert_eq!(out_nt, matmul_nt(&a, &bt).expect("conformable"));

        let mut bad = Tensor::zeros([5, 6]);
        assert!(matmul_into(&a, &b, &mut bad).is_err());
        assert!(matmul_tn_into(&at, &b, &mut bad).is_err());
        assert!(matmul_nt_into(&a, &bt, &mut bad).is_err());
    }

    #[test]
    fn dot_basic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("ok");
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]).expect("ok");
        assert_eq!(dot(&a, &b).expect("same length"), 32.0);
        assert!(dot(&a, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("ok");
        let y = add_bias_rows(&x, &b).expect("conformable");
        assert_eq!(y.row(0).expect("in range").data(), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1).expect("in range").data(), &[1.0, 2.0, 3.0]);
        assert!(add_bias_rows(&x, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn add_bias_in_place_matches_copy() {
        let x = Tensor::rand_uniform([3, 4], -1.0, 1.0, 14);
        let b = Tensor::rand_uniform([4], -1.0, 1.0, 15);
        let copied = add_bias_rows(&x, &b).expect("conformable");
        let mut inplace = x.clone();
        add_bias_rows_in_place(&mut inplace, &b).expect("conformable");
        assert_eq!(inplace, copied);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        let c = matmul(&a, &b).expect("conformable");
        assert_eq!(c.dims(), &[0, 2]);
    }
}
