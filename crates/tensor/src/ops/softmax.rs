//! Row-wise softmax and related numerically-stable kernels.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Row-wise softmax of a `(m, n)` matrix, numerically stabilised by
/// max-subtraction.
///
/// # Errors
///
/// Returns an error for non-matrix input or zero columns.
///
/// # Examples
///
/// ```
/// use reduce_tensor::{ops::softmax_rows, Tensor};
///
/// # fn main() -> Result<(), reduce_tensor::TensorError> {
/// let logits = Tensor::from_vec(vec![0.0, 0.0], [1, 2])?;
/// let p = softmax_rows(&logits)?;
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix()?;
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "softmax_rows",
            reason: "zero columns".to_string(),
        });
    }
    let mut out = x.clone();
    for i in 0..m {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - mx).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    Ok(out)
}

/// Row-wise log-softmax (stable), used by the cross-entropy loss.
///
/// # Errors
///
/// Same conditions as [`softmax_rows`].
pub fn log_softmax_rows(x: &Tensor) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix()?;
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "log_softmax_rows",
            reason: "zero columns".to_string(),
        });
    }
    let mut out = x.clone();
    for i in 0..m {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    Ok(out)
}

/// One-hot encodes class labels into a `(labels.len(), classes)` matrix.
///
/// # Errors
///
/// Returns [`TensorError::OutOfBounds`] if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros([labels.len(), classes]);
    for (i, &l) in labels.iter().enumerate() {
        if l >= classes {
            return Err(TensorError::OutOfBounds {
                what: "label",
                index: l,
                bound: classes,
            });
        }
        out.data_mut()[i * classes + l] = 1.0;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::rand_uniform([4, 7], -5.0, 5.0, 3);
        let p = softmax_rows(&x).expect("matrix");
        for i in 0..4 {
            let s: f32 = p.row_slice(i).expect("in range").iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0], [1, 2]).expect("ok");
        let p = softmax_rows(&x).expect("matrix");
        assert!(p.all_finite());
        assert!((p.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::rand_uniform([3, 5], -2.0, 2.0, 4);
        let a = log_softmax_rows(&x).expect("matrix");
        let b = softmax_rows(&x).expect("matrix").map(|v| v.ln());
        assert!(a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let x = Tensor::rand_uniform([2, 4], -1.0, 1.0, 5);
        let shifted = &x + 7.5;
        let a = softmax_rows(&x).expect("matrix");
        let b = softmax_rows(&shifted).expect("matrix");
        assert!(a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn one_hot_basic() {
        let t = one_hot(&[0, 2], 3).expect("labels in range");
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn softmax_rejects_non_matrix() {
        assert!(softmax_rows(&Tensor::zeros([3])).is_err());
        assert!(log_softmax_rows(&Tensor::zeros([2, 0])).is_err());
    }
}
