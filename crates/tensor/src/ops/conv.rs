//! Convolution and pooling kernels for NCHW tensors.
//!
//! Convolution is implemented by the classic im2col lowering: the input
//! patches are unrolled into a `(N·OH·OW, C·KH·KW)` matrix so the
//! convolution becomes one GEMM against the `(OC, C·KH·KW)` filter matrix —
//! exactly the reshaping the systolic-array mapper in `reduce-systolic`
//! assumes when it lays filter weights onto the PE grid.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Spatial geometry of a 2-D convolution or pooling window.
///
/// # Examples
///
/// ```
/// use reduce_tensor::ops::Conv2dGeometry;
///
/// # fn main() -> Result<(), reduce_tensor::TensorError> {
/// let g = Conv2dGeometry::new(32, 32, 3, 3, 1, 1)?;
/// assert_eq!(g.out_h, 32); // "same" padding with 3x3/stride 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes output geometry for the given window parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the stride is zero, the
    /// kernel is empty, or the padded input is smaller than the kernel.
    pub fn new(
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "Conv2dGeometry",
                reason: "stride must be nonzero".to_string(),
            });
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidArgument {
                op: "Conv2dGeometry",
                reason: "kernel must be non-empty".to_string(),
            });
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if padded_h < kernel_h || padded_w < kernel_w {
            return Err(TensorError::InvalidArgument {
                op: "Conv2dGeometry",
                reason: format!(
                    "kernel {kernel_h}x{kernel_w} larger than padded input {padded_h}x{padded_w}"
                ),
            });
        }
        Ok(Conv2dGeometry {
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            padding,
            out_h: (padded_h - kernel_h) / stride + 1,
            out_w: (padded_w - kernel_w) / stride + 1,
        })
    }

    /// Number of output positions per image (`out_h * out_w`).
    pub fn out_positions(&self) -> usize {
        self.out_h * self.out_w
    }
}

fn check_nchw(op: &'static str, x: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let d = x.dims();
    if d.len() != 4 {
        return Err(TensorError::InvalidArgument {
            op,
            reason: format!("expected NCHW rank-4 tensor, got shape {:?}", d),
        });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

/// Unrolls input patches: `(N, C, H, W)` → `(N·OH·OW, C·KH·KW)`.
///
/// Row `n·OH·OW + oy·OW + ox` holds the flattened receptive field of output
/// position `(oy, ox)` of image `n`; out-of-bounds (padding) taps are zero.
///
/// # Errors
///
/// Returns an error if `x` is not rank-4 or the geometry does not match its
/// spatial dims.
pub fn im2col(x: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let (n, c, _, _) = check_nchw("im2col", x)?;
    let mut out = Tensor::zeros([
        n * geom.out_h * geom.out_w,
        c * geom.kernel_h * geom.kernel_w,
    ]);
    im2col_into(x, geom, &mut out)?;
    Ok(out)
}

/// Like [`im2col`] but writing into a caller-provided scratch tensor of
/// shape `(N·OH·OW, C·KH·KW)`. `out` is zeroed first (padding taps must
/// read zero); results are bit-identical to [`im2col`].
///
/// # Errors
///
/// Same conditions as [`im2col`], plus a shape check on `out`.
pub fn im2col_into(x: &Tensor, geom: &Conv2dGeometry, out: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_nchw("im2col", x)?;
    if h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: vec![geom.in_h, geom.in_w],
            rhs: vec![h, w],
        });
    }
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let (oh, ow) = (geom.out_h, geom.out_w);
    let row_len = c * kh * kw;
    if out.dims() != [n * oh * ow, row_len] {
        return Err(TensorError::ShapeMismatch {
            op: "im2col_into",
            lhs: vec![n * oh * ow, row_len],
            rhs: out.dims().to_vec(),
        });
    }
    out.fill_zero();
    let xd = x.data();
    let od = out.data_mut();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (img * oh + oy) * ow + ox;
                let base = row * row_len;
                for ch in 0..c {
                    let chan_base = (img * c + ch) * h * w;
                    for ky in 0..kh {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // padding row stays zero
                        }
                        let iy = iy as usize;
                        for kx in 0..kw {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            od[base + (ch * kh + ky) * kw + kx] =
                                xd[chan_base + iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scatters column gradients back: the adjoint of [`im2col`].
///
/// `cols` has shape `(N·OH·OW, C·KH·KW)`; the result has shape
/// `(N, C, H, W)` with overlapping taps accumulated.
///
/// # Errors
///
/// Returns an error if `cols` does not match the geometry.
pub fn col2im(cols: &Tensor, n: usize, c: usize, geom: &Conv2dGeometry) -> Result<Tensor> {
    let mut out = Tensor::zeros([n, c, geom.in_h, geom.in_w]);
    col2im_into(cols, n, c, geom, &mut out)?;
    Ok(out)
}

/// Like [`col2im`] but accumulating into a caller-provided tensor of shape
/// `(N, C, H, W)`. `out` is zeroed first; results are bit-identical to
/// [`col2im`].
///
/// # Errors
///
/// Same conditions as [`col2im`], plus a shape check on `out`.
pub fn col2im_into(
    cols: &Tensor,
    n: usize,
    c: usize,
    geom: &Conv2dGeometry,
    out: &mut Tensor,
) -> Result<()> {
    let (rows, row_len) = cols.shape().as_matrix()?;
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let (oh, ow, h, w) = (geom.out_h, geom.out_w, geom.in_h, geom.in_w);
    if rows != n * oh * ow || row_len != c * kh * kw {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: vec![n * oh * ow, c * kh * kw],
            rhs: vec![rows, row_len],
        });
    }
    if out.dims() != [n, c, h, w] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im_into",
            lhs: vec![n, c, h, w],
            rhs: out.dims().to_vec(),
        });
    }
    out.fill_zero();
    let cd = cols.data();
    let od = out.data_mut();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (img * oh + oy) * ow + ox;
                let base = row * row_len;
                for ch in 0..c {
                    let chan_base = (img * c + ch) * h * w;
                    for ky in 0..kh {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for kx in 0..kw {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            od[chan_base + iy * w + ix as usize] +=
                                cd[base + (ch * kh + ky) * kw + kx];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reorders a `(N·OH·OW, OC)` GEMM output into NCHW `(N, OC, OH, OW)`.
///
/// # Errors
///
/// Returns an error on inconsistent dimensions.
pub fn rows_to_nchw(rows: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros([n, oc, oh, ow]);
    rows_to_nchw_into(rows, n, oc, oh, ow, &mut out)?;
    Ok(out)
}

/// Like [`rows_to_nchw`] but writing into a caller-provided tensor of shape
/// `(N, OC, OH, OW)`. Every element is overwritten.
///
/// # Errors
///
/// Same conditions as [`rows_to_nchw`], plus a shape check on `out`.
pub fn rows_to_nchw_into(
    rows: &Tensor,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
    out: &mut Tensor,
) -> Result<()> {
    let (r, c) = rows.shape().as_matrix()?;
    if r != n * oh * ow || c != oc {
        return Err(TensorError::ShapeMismatch {
            op: "rows_to_nchw",
            lhs: vec![n * oh * ow, oc],
            rhs: vec![r, c],
        });
    }
    if out.dims() != [n, oc, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "rows_to_nchw_into",
            lhs: vec![n, oc, oh, ow],
            rhs: out.dims().to_vec(),
        });
    }
    let rd = rows.data();
    let od = out.data_mut();
    for img in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = (img * oh + y) * ow + x;
                for ch in 0..oc {
                    od[((img * oc + ch) * oh + y) * ow + x] = rd[row * oc + ch];
                }
            }
        }
    }
    Ok(())
}

/// Inverse of [`rows_to_nchw`]: NCHW `(N, OC, OH, OW)` → `(N·OH·OW, OC)`.
///
/// # Errors
///
/// Returns an error if `x` is not rank-4.
pub fn nchw_to_rows(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("nchw_to_rows", x)?;
    let mut out = Tensor::zeros([n * h * w, c]);
    nchw_to_rows_into(x, &mut out)?;
    Ok(out)
}

/// Like [`nchw_to_rows`] but writing into a caller-provided tensor of shape
/// `(N·H·W, C)`. Every element is overwritten.
///
/// # Errors
///
/// Same conditions as [`nchw_to_rows`], plus a shape check on `out`.
pub fn nchw_to_rows_into(x: &Tensor, out: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_nchw("nchw_to_rows", x)?;
    if out.dims() != [n * h * w, c] {
        return Err(TensorError::ShapeMismatch {
            op: "nchw_to_rows_into",
            lhs: vec![n * h * w, c],
            rhs: out.dims().to_vec(),
        });
    }
    let xd = x.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xcol in 0..w {
                    let row = (img * h + y) * w + xcol;
                    od[row * c + ch] = xd[((img * c + ch) * h + y) * w + xcol];
                }
            }
        }
    }
    Ok(())
}

/// Output of [`max_pool2d`]: pooled values plus flat argmax indices used by
/// the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled tensor `(N, C, OH, OW)`.
    pub output: Tensor,
    /// For each output element, the flat index into the input tensor of the
    /// element that produced it.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over an NCHW tensor (no padding).
///
/// # Errors
///
/// Returns an error for non-rank-4 input, a zero window/stride, or a window
/// larger than the input.
pub fn max_pool2d(x: &Tensor, window: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = check_nchw("max_pool2d", x)?;
    let geom = Conv2dGeometry::new(h, w, window, window, stride, 0)?;
    let mut output = Tensor::zeros([n, c, geom.out_h, geom.out_w]);
    let mut argmax = Vec::new();
    max_pool2d_into(x, window, stride, &mut output, &mut argmax)?;
    Ok(MaxPoolOutput { output, argmax })
}

/// Like [`max_pool2d`] but writing pooled values into `out` (shape
/// `(N, C, OH, OW)`) and argmax indices into a caller-owned `argmax`
/// buffer, which is cleared and refilled (its allocation is reused once it
/// has grown to size). Results are bit-identical to [`max_pool2d`].
///
/// # Errors
///
/// Same conditions as [`max_pool2d`], plus a shape check on `out`.
pub fn max_pool2d_into(
    x: &Tensor,
    window: usize,
    stride: usize,
    out: &mut Tensor,
    argmax: &mut Vec<usize>,
) -> Result<()> {
    let (n, c, h, w) = check_nchw("max_pool2d", x)?;
    let geom = Conv2dGeometry::new(h, w, window, window, stride, 0)?;
    let (oh, ow) = (geom.out_h, geom.out_w);
    if out.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "max_pool2d_into",
            lhs: vec![n, c, oh, ow],
            rhs: out.dims().to_vec(),
        });
    }
    argmax.clear();
    argmax.resize(n * c * oh * ow, 0);
    let output = out;
    let xd = x.data();
    let od = output.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let chan_base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = chan_base + (oy * stride) * w + ox * stride;
                    for ky in 0..window {
                        for kx in 0..window {
                            let idx = chan_base + (oy * stride + ky) * w + (ox * stride + kx);
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let out_idx = ((img * c + ch) * oh + oy) * ow + ox;
                    od[out_idx] = best;
                    argmax[out_idx] = best_idx;
                }
            }
        }
    }
    Ok(())
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that won the max.
///
/// # Errors
///
/// Returns an error if `grad` and `argmax` lengths differ.
pub fn max_pool2d_backward(
    grad: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    let mut out = Tensor::zeros(input_dims.to_vec());
    max_pool2d_backward_into(grad, argmax, &mut out)?;
    Ok(out)
}

/// Like [`max_pool2d_backward`] but accumulating into a caller-provided
/// tensor already shaped like the pooling input. `out` is zeroed first;
/// results are bit-identical to [`max_pool2d_backward`].
///
/// # Errors
///
/// Returns an error if `grad` and `argmax` lengths differ.
pub fn max_pool2d_backward_into(grad: &Tensor, argmax: &[usize], out: &mut Tensor) -> Result<()> {
    if grad.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad.len(),
        });
    }
    out.fill_zero();
    let od = out.data_mut();
    for (g, &idx) in grad.data().iter().zip(argmax) {
        od[idx] += g;
    }
    Ok(())
}

/// 2-D average pooling over an NCHW tensor (no padding).
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn avg_pool2d(x: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("avg_pool2d", x)?;
    let geom = Conv2dGeometry::new(h, w, window, window, stride, 0)?;
    let mut output = Tensor::zeros([n, c, geom.out_h, geom.out_w]);
    avg_pool2d_into(x, window, stride, &mut output)?;
    Ok(output)
}

/// Like [`avg_pool2d`] but writing into `out` (shape `(N, C, OH, OW)`).
/// Every element is overwritten; results are bit-identical to
/// [`avg_pool2d`].
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`], plus a shape check on `out`.
pub fn avg_pool2d_into(x: &Tensor, window: usize, stride: usize, out: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_nchw("avg_pool2d", x)?;
    let geom = Conv2dGeometry::new(h, w, window, window, stride, 0)?;
    let (oh, ow) = (geom.out_h, geom.out_w);
    if out.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_into",
            lhs: vec![n, c, oh, ow],
            rhs: out.dims().to_vec(),
        });
    }
    let inv = 1.0 / (window * window) as f32;
    let output = out;
    let xd = x.data();
    let od = output.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let chan_base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += xd[chan_base + (oy * stride + ky) * w + (ox * stride + kx)];
                        }
                    }
                    od[((img * c + ch) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    Ok(())
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error if dims are inconsistent with the window geometry.
pub fn avg_pool2d_backward(
    grad: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    if grad.rank() != 4 || input_dims.len() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d_backward",
            reason: "expected rank-4 grad and input dims".to_string(),
        });
    }
    let mut out = Tensor::zeros(input_dims.to_vec());
    avg_pool2d_backward_into(grad, window, stride, &mut out)?;
    Ok(out)
}

/// Like [`avg_pool2d_backward`] but accumulating into a caller-provided
/// tensor already shaped like the pooling input. `out` is zeroed first;
/// results are bit-identical to [`avg_pool2d_backward`].
///
/// # Errors
///
/// Returns an error if `grad` or `out` is not rank-4.
pub fn avg_pool2d_backward_into(
    grad: &Tensor,
    window: usize,
    stride: usize,
    out: &mut Tensor,
) -> Result<()> {
    let d = grad.dims().to_vec();
    if d.len() != 4 || out.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d_backward",
            reason: "expected rank-4 grad and input dims".to_string(),
        });
    }
    let (n, c, oh, ow) = (d[0], d[1], d[2], d[3]);
    let (h, w) = (out.dims()[2], out.dims()[3]);
    let inv = 1.0 / (window * window) as f32;
    out.fill_zero();
    let gd = grad.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let chan_base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[((img * c + ch) * oh + oy) * ow + ox] * inv;
                    for ky in 0..window {
                        for kx in 0..window {
                            od[chan_base + (oy * stride + ky) * w + (ox * stride + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::matmul_nt;

    /// Direct (definition-level) convolution used as an oracle.
    fn naive_conv(x: &Tensor, w: &Tensor, geom: &Conv2dGeometry) -> Tensor {
        let xd = x.dims().to_vec();
        let (n, c, h, wd) = (xd[0], xd[1], xd[2], xd[3]);
        let wdims = w.dims().to_vec();
        let oc = wdims[0];
        let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
        let (oh, ow) = (geom.out_h, geom.out_w);
        Tensor::from_fn([n, oc, oh, ow], |flat| {
            let ox = flat % ow;
            let oy = (flat / ow) % oh;
            let f = (flat / (ow * oh)) % oc;
            let img = flat / (ow * oh * oc);
            let mut acc = 0.0f32;
            for ch in 0..c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = (oy * s + ky) as isize - p as isize;
                        let ix = (ox * s + kx) as isize - p as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= wd as isize {
                            continue;
                        }
                        let xval = x.data()[((img * c + ch) * h + iy as usize) * wd + ix as usize];
                        let wval = w.data()[((f * c + ch) * kh + ky) * kw + kx];
                        acc += xval * wval;
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(8, 8, 3, 3, 1, 1).expect("valid");
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.out_positions(), 64);
    }

    #[test]
    fn geometry_strided() {
        let g = Conv2dGeometry::new(8, 8, 2, 2, 2, 0).expect("valid");
        assert_eq!((g.out_h, g.out_w), (4, 4));
    }

    #[test]
    fn geometry_rejects_bad_args() {
        assert!(Conv2dGeometry::new(8, 8, 3, 3, 0, 0).is_err());
        assert!(Conv2dGeometry::new(8, 8, 0, 3, 1, 0).is_err());
        assert!(Conv2dGeometry::new(2, 2, 5, 5, 1, 0).is_err());
    }

    #[test]
    fn im2col_gemm_matches_naive_conv() {
        let geom = Conv2dGeometry::new(6, 5, 3, 3, 1, 1).expect("valid");
        let x = Tensor::rand_uniform([2, 3, 6, 5], -1.0, 1.0, 11);
        let w = Tensor::rand_uniform([4, 3 * 3 * 3], -1.0, 1.0, 12);
        let cols = im2col(&x, &geom).expect("geometry matches");
        let rows = matmul_nt(&cols, &w).expect("conformable");
        let got = rows_to_nchw(&rows, 2, 4, geom.out_h, geom.out_w).expect("consistent");
        let w4 = w.reshape([4, 3, 3, 3]).expect("same volume");
        let want = naive_conv(&x, &w4, &geom);
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn im2col_strided_no_padding() {
        let geom = Conv2dGeometry::new(4, 4, 2, 2, 2, 0).expect("valid");
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let cols = im2col(&x, &geom).expect("geometry matches");
        assert_eq!(cols.dims(), &[4, 4]);
        // First patch is the top-left 2x2 block.
        assert_eq!(cols.row(0).expect("in range").data(), &[0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn im2col_rejects_wrong_spatial_dims() {
        let geom = Conv2dGeometry::new(6, 6, 3, 3, 1, 1).expect("valid");
        let x = Tensor::zeros([1, 1, 5, 5]);
        assert!(im2col(&x, &geom).is_err());
        assert!(im2col(&Tensor::zeros([5, 5]), &geom).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        let geom = Conv2dGeometry::new(5, 5, 3, 3, 1, 1).expect("valid");
        let x = Tensor::rand_uniform([1, 2, 5, 5], -1.0, 1.0, 21);
        let cols = im2col(&x, &geom).expect("geometry matches");
        let y = Tensor::rand_uniform(cols.dims().to_vec(), -1.0, 1.0, 22);
        let xback = col2im(&y, 1, 2, &geom).expect("consistent");
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(xback.data())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn rows_nchw_round_trip() {
        let x = Tensor::rand_uniform([2, 3, 4, 5], -1.0, 1.0, 31);
        let rows = nchw_to_rows(&x).expect("rank 4");
        let back = rows_to_nchw(&rows, 2, 3, 4, 5).expect("consistent");
        assert_eq!(back, x);
    }

    #[test]
    fn max_pool_forward() {
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let p = max_pool2d(&x, 2, 2).expect("valid window");
        assert_eq!(p.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(p.output.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let p = max_pool2d(&x, 2, 2).expect("valid window");
        let g = Tensor::ones(p.output.dims().to_vec());
        let gx = max_pool2d_backward(&g, &p.argmax, x.dims()).expect("consistent");
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]).expect("valid"), 1.0); // element 5
        assert_eq!(gx.at(&[0, 0, 0, 0]).expect("valid"), 0.0);
    }

    #[test]
    fn avg_pool_forward_backward() {
        let x = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        let y = avg_pool2d(&x, 2, 2).expect("valid window");
        assert_eq!(y.data(), &[1.5]);
        let gx = avg_pool2d_backward(&y, x.dims(), 2, 2).expect("consistent");
        assert!(gx.data().iter().all(|&v| (v - 0.375).abs() < 1e-6));
    }

    #[test]
    fn pool_gradcheck_against_finite_difference() {
        let x = Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, 41);
        let p = max_pool2d(&x, 2, 2).expect("valid window");
        // Loss = sum of pooled outputs; analytic gradient routes ones.
        let g = Tensor::ones(p.output.dims().to_vec());
        let gx = max_pool2d_backward(&g, &p.argmax, x.dims()).expect("consistent");
        let eps = 1e-3;
        for probe in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let lp = max_pool2d(&xp, 2, 2).expect("valid window").output.sum();
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let lm = max_pool2d(&xm, 2, 2).expect("valid window").output.sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[probe]).abs() < 1e-2,
                "probe {probe}: fd {fd} vs analytic {}",
                gx.data()[probe]
            );
        }
    }
}
