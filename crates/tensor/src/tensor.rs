//! The dense, row-major `f32` tensor type on shared copy-on-write storage.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

/// The shared, copy-on-write element buffer behind a [`Tensor`].
///
/// Cloning a `Storage` bumps a reference count; the buffer is only copied
/// when a writer calls [`Tensor::data_mut`] while the storage is shared
/// (`Arc::make_mut` semantics). This is what makes model snapshots O(1)
/// and lets every executor thread of a fleet evaluation read one
/// pretrained weight set without copying it.
#[derive(Clone, Default)]
struct Storage(Arc<Vec<f32>>);

impl Storage {
    fn new(data: Vec<f32>) -> Self {
        Storage(Arc::new(data))
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality is a pure fast path: aliased buffers hold the
        // same bytes by construction.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl fmt::Debug for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the Reduce
/// reproduction: activations, weights, gradients and fault masks are all
/// `Tensor`s. Data is always contiguous and lives in a shared
/// copy-on-write [`Storage`]: `clone()` and [`Tensor::reshape`] are O(1)
/// aliases, and the first write through [`Tensor::data_mut`] un-shares the
/// buffer. Transposes copy.
///
/// # Examples
///
/// ```
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let b = Tensor::full([2, 2], 10.0);
/// let c = (&a + &b)?;
/// assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
///
/// // Clones share storage until one side writes.
/// let snapshot = a.clone();
/// assert!(snapshot.shares_storage(&a));
/// let mut edited = a.clone();
/// edited.data_mut()[0] = 9.0; // copy-on-write happens here
/// assert!(!edited.shares_storage(&a));
/// assert_eq!(snapshot.data()[0], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Storage,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: Storage::new(vec![0.0; n]),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones<S: Into<Shape>>(shape: S) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: Storage::new(vec![value; n]),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec<S: Into<Shape>>(data: Vec<f32>, shape: S) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Storage::new(data),
        })
    }

    /// Creates a tensor by evaluating `f` at every flat (row-major) index.
    pub fn from_fn<S: Into<Shape>, F: FnMut(usize) -> f32>(shape: S, f: F) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let data = (0..n).map(f).collect();
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: Storage::new(vec![value]),
        }
    }

    /// Creates a tensor of `n` evenly spaced values in `[start, end)`.
    pub fn arange(start: f32, end: f32, step: f32) -> Self {
        // xtask:allow(float-eq): a literal-zero step is a caller bug, checked exactly
        assert!(step != 0.0, "arange step must be nonzero");
        let n = if (end - start) / step > 0.0 {
            ((end - start) / step).ceil() as usize
        } else {
            0
        };
        let data: Vec<f32> = (0..n).map(|i| start + step * i as f32).collect();
        let len = data.len();
        Tensor {
            shape: Shape::from([len]),
            data: Storage::new(data),
        }
    }

    /// Creates a tensor with i.i.d. uniform values in `[lo, hi)`, seeded.
    pub fn rand_uniform<S: Into<Shape>>(shape: S, lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::rand_uniform_with(shape, lo, hi, &mut rng)
    }

    /// Like [`Tensor::rand_uniform`] but drawing from a caller-owned RNG.
    pub fn rand_uniform_with<S: Into<Shape>, R: Rng>(
        shape: S,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Creates a tensor with i.i.d. normal values `N(mean, std^2)`, seeded.
    pub fn rand_normal<S: Into<Shape>>(shape: S, mean: f32, std: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::rand_normal_with(shape, mean, std, &mut rng)
    }

    /// Like [`Tensor::rand_normal`] but drawing from a caller-owned RNG.
    ///
    /// Uses the Box–Muller transform so only `rand`'s uniform source is
    /// needed.
    pub fn rand_normal_with<S: Into<Shape>, R: Rng>(
        shape: S,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            // xtask:allow(index): i < n so the diagonal offset is < n * n
            t.data_mut()[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Storage & aliasing
    // ------------------------------------------------------------------

    /// Whether `self` and `other` alias the same underlying buffer.
    ///
    /// True after a `clone()` or [`Tensor::reshape`] until either side
    /// writes (which un-shares via copy-on-write).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data.0, &other.data.0)
    }

    /// Whether this tensor is the sole owner of its buffer (writes through
    /// [`Tensor::data_mut`] will not copy).
    pub fn storage_is_unique(&self) -> bool {
        Arc::strong_count(&self.data.0) == 1
    }

    /// Consumes the tensor; returns its buffer only if no other tensor
    /// shares it. Used by workspace arenas to recycle buffers without ever
    /// detaching one that is still visible elsewhere.
    pub fn into_unique_vec(self) -> Option<Vec<f32>> {
        Arc::try_unwrap(self.data.0).ok()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice (shortcut for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.0.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.0.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data.0
    }

    /// Mutable view of the underlying row-major data.
    ///
    /// This is the copy-on-write point: if the storage is shared (a
    /// snapshot, a mask application on a restored model, …) the buffer is
    /// copied once here and `self` becomes the sole owner.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data.0).as_mut_slice()
    }

    /// Consumes the tensor, returning its data buffer (copying only if the
    /// storage is shared).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data.0).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn at(&self, idx: &[usize]) -> Result<f32> {
        // xtask:allow(index): Shape::offset bounds-checks every coordinate
        Ok(self.data()[self.shape.offset(idx)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(idx)?;
        // xtask:allow(index): Shape::offset bounds-checks every coordinate
        self.data_mut()[off] = value;
        Ok(())
    }

    /// The single value of a scalar or single-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.len() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "item",
                reason: format!("tensor has {} elements, expected 1", self.len()),
            });
        }
        // xtask:allow(index): the length-1 check above guarantees element 0
        Ok(self.data()[0])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// O(1): the result aliases this tensor's storage; a later write to
    /// either side un-shares via copy-on-write.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Result<Tensor> {
        let shape = shape.into();
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape_in_place<S: Into<Shape>>(&mut self, shape: S) -> Result<()> {
        let shape = shape.into();
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Transpose of a rank-2 tensor (copies).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros([c, r]);
        let src = self.data();
        let dst = out.data_mut();
        for i in 0..r {
            for j in 0..c {
                // xtask:allow(index): i < r and j < c over r * c buffers
                dst[j * r + i] = src[i * c + j];
            }
        }
        Ok(out)
    }

    /// Copies row `i` of a rank-2 tensor into a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-range rows.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if i >= r {
            return Err(TensorError::OutOfBounds {
                what: "row",
                index: i,
                bound: r,
            });
        }
        Ok(Tensor {
            shape: Shape::from([c]),
            // xtask:allow(index): the row bound i < r is checked above
            data: Storage::new(self.data()[i * c..(i + 1) * c].to_vec()),
        })
    }

    /// Borrow of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-range rows.
    pub fn row_slice(&self, i: usize) -> Result<&[f32]> {
        let (r, c) = self.shape.as_matrix()?;
        if i >= r {
            return Err(TensorError::OutOfBounds {
                what: "row",
                index: i,
                bound: r,
            });
        }
        // xtask:allow(index): the row bound i < r is checked above
        Ok(&self.data()[i * c..(i + 1) * c])
    }

    /// Copies rows `[start, end)` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or invalid ranges.
    pub fn rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if start > end || end > r {
            return Err(TensorError::OutOfBounds {
                what: "row range end",
                index: end,
                bound: r + 1,
            });
        }
        Ok(Tensor {
            shape: Shape::from([end - start, c]),
            // xtask:allow(index): start <= end <= r is validated above
            data: Storage::new(self.data()[start * c..end * c].to_vec()),
        })
    }

    /// Copies rows `[start, end)` of a rank-2 tensor into `out`, which must
    /// already have shape `[end - start, cols]`. The allocation-free
    /// counterpart of [`Tensor::rows`] for workspace-backed batch slicing.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors, invalid ranges, or an `out`
    /// of the wrong shape.
    pub fn rows_into(&self, start: usize, end: usize, out: &mut Tensor) -> Result<()> {
        let (r, c) = self.shape.as_matrix()?;
        if start > end || end > r {
            return Err(TensorError::OutOfBounds {
                what: "row range end",
                index: end,
                bound: r + 1,
            });
        }
        if out.dims() != [end - start, c] {
            return Err(TensorError::ShapeMismatch {
                op: "rows_into",
                lhs: vec![end - start, c],
                rhs: out.dims().to_vec(),
            });
        }
        // xtask:allow(index): start <= end <= r is validated above
        let src = &self.data()[start * c..end * c];
        out.data_mut().copy_from_slice(src);
        Ok(())
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `rows` is empty or rows
    /// disagree in length or rank.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows.first().ok_or(TensorError::InvalidArgument {
            op: "stack_rows",
            reason: "no rows given".to_string(),
        })?;
        if first.rank() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "stack_rows",
                reason: format!("expected rank-1 rows, got rank {}", first.rank()),
            });
        }
        let c = first.len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for row in rows {
            if row.len() != c || row.rank() != 1 {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_rows",
                    lhs: first.dims().to_vec(),
                    rhs: row.dims().to_vec(),
                });
            }
            data.extend_from_slice(row.data());
        }
        Ok(Tensor {
            shape: Shape::from([rows.len(), c]),
            data: Storage::new(data),
        })
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Storage::new(self.data().iter().map(|&x| f(x)).collect()),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data: Storage::new(data),
        })
    }

    /// In-place `self[i] = f(self[i], other[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map_in_place<F: Fn(f32, f32) -> f32>(&mut self, other: &Tensor, f: F) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map_in_place",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data.0.iter()) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// `self += alpha * other` (BLAS `axpy`), shapes must match.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.zip_map_in_place(other, |a, b| a + alpha * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in self.data_mut() {
            *x *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data_mut().iter_mut().for_each(|x| *x = value);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element (first on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "argmax",
                reason: "empty tensor".to_string(),
            });
        }
        let data = self.data();
        let mut best = 0usize;
        for (i, &x) in data.iter().enumerate() {
            // xtask:allow(index): best always holds an already-visited index
            if x > data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors or
    /// zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (r, c) = self.shape.as_matrix()?;
        if c == 0 {
            return Err(TensorError::InvalidArgument {
                op: "argmax_rows",
                reason: "zero columns".to_string(),
            });
        }
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            // xtask:allow(index): i < r over an r * c buffer
            let row = &self.data()[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &x) in row.iter().enumerate() {
                // xtask:allow(index): best always holds an already-visited index
                if x > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sum over rows of a rank-2 tensor, yielding a rank-1 tensor of length
    /// `cols` (the column sums). This is the reduction used for bias
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (_, c) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros([c]);
        self.sum_rows_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Tensor::sum_rows`] but accumulating into `out`, which must
    /// have shape `[cols]`. `out` is zeroed first; the summation order is
    /// identical to [`Tensor::sum_rows`].
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or a misshapen `out`.
    pub fn sum_rows_into(&self, out: &mut Tensor) -> Result<()> {
        let (r, c) = self.shape.as_matrix()?;
        if out.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                op: "sum_rows_into",
                lhs: vec![c],
                rhs: out.dims().to_vec(),
            });
        }
        out.fill_zero();
        let dst = out.data_mut();
        for i in 0..r {
            // xtask:allow(index): i < r over an r * c buffer
            for (o, &v) in dst.iter_mut().zip(&self.data()[i * c..(i + 1) * c]) {
                *o += v;
            }
        }
        Ok(())
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        // xtask:allow(float-eq): sparsity counts exact-zero entries by definition
        let zeros = self.data().iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.len() as f32
    }

    /// Returns `true` if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data().iter().all(|x| x.is_finite())
    }

    /// Elementwise approximate equality within `tol` (absolute).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data()
                .iter()
                .zip(other.data())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}[", self.shape)?;
        let n = self.len().min(8);
        // xtask:allow(index): n is clamped to self.len() by the min above
        for (i, x) in self.data()[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op_name:literal, $f:expr) => {
        impl $trait for &Tensor {
            type Output = Result<Tensor>;
            fn $method(self, rhs: &Tensor) -> Result<Tensor> {
                if self.shape != rhs.shape {
                    return Err(TensorError::ShapeMismatch {
                        op: $op_name,
                        lhs: self.dims().to_vec(),
                        rhs: rhs.dims().to_vec(),
                    });
                }
                self.zip_map(rhs, $f)
            }
        }
    };
}

impl_binop!(Add, add, "add", |a, b| a + b);
impl_binop!(Sub, sub, "sub", |a, b| a - b);
impl_binop!(Mul, mul, "mul", |a, b| a * b);
impl_binop!(Div, div, "div", |a, b| a / b);

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.map(|x| x + rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([2, 3]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full([2], 4.5);
        assert_eq!(f.data(), &[4.5, 4.5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], [3]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("lengths match");
        assert_eq!(t.dims(), &[3]);
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let t = Tensor::from_fn([2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.at(&[1, 0]).expect("valid"), 2.0);
    }

    #[test]
    fn arange_basic() {
        let t = Tensor::arange(0.0, 1.0, 0.25);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75]);
        assert!(Tensor::arange(1.0, 0.0, 0.5).is_empty());
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = Tensor::rand_uniform([16], -1.0, 1.0, 42);
        let b = Tensor::rand_uniform([16], -1.0, 1.0, 42);
        let c = Tensor::rand_uniform([16], -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn rand_normal_moments() {
        let t = Tensor::rand_normal([10_000], 2.0, 0.5, 7);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.03, "var {var}");
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]).expect("valid"), 1.0);
        assert_eq!(t.at(&[0, 1]).expect("valid"), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(3.0).item().expect("scalar"), 3.0);
        assert!(Tensor::zeros([2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let r = t.reshape([3, 2]).expect("same volume");
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let tt = t.transpose().expect("matrix");
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(
            tt.at(&[2, 1]).expect("valid"),
            t.at(&[1, 2]).expect("valid")
        );
        assert_eq!(tt.transpose().expect("matrix"), t);
    }

    #[test]
    fn row_and_rows() {
        let t = Tensor::from_fn([3, 2], |i| i as f32);
        assert_eq!(t.row(1).expect("in range").data(), &[2.0, 3.0]);
        assert_eq!(t.rows(1, 3).expect("in range").dims(), &[2, 2]);
        assert!(t.row(3).is_err());
        assert!(t.rows(2, 4).is_err());
    }

    #[test]
    fn rows_into_matches_rows() {
        let t = Tensor::from_fn([4, 3], |i| i as f32);
        let mut out = Tensor::zeros([2, 3]);
        t.rows_into(1, 3, &mut out).expect("in range");
        assert_eq!(out, t.rows(1, 3).expect("in range"));
        assert!(t.rows_into(0, 3, &mut out).is_err(), "shape mismatch");
        assert!(t.rows_into(3, 5, &mut out).is_err(), "out of range");
    }

    #[test]
    fn stack_rows_round_trip() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], [2]).expect("ok"),
            Tensor::from_vec(vec![3.0, 4.0], [2]).expect("ok"),
        ];
        let m = Tensor::stack_rows(&rows).expect("consistent rows");
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(0).expect("in range"), rows[0]);
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).expect("ok");
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]).expect("ok");
        assert_eq!((&a + &b).expect("same shape").data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).expect("same shape").data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).expect("same shape").data(), &[3.0, 10.0]);
        assert_eq!((&b / &a).expect("same shape").data(), &[3.0, 2.5]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        assert_eq!((&a + 1.0).data(), &[2.0, 3.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_is_error() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!((&a + &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("ok");
        a.axpy(0.5, &b).expect("same shape");
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], [4]).expect("ok");
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax().expect("non-empty"), 2);
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.sparsity() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 2.0], [2, 2]).expect("ok");
        assert_eq!(t.argmax_rows().expect("matrix"), vec![0, 1]);
    }

    #[test]
    fn sum_rows_gives_column_sums() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let s = t.sum_rows().expect("matrix");
        assert_eq!(s.data(), &[3.0, 5.0, 7.0]);
        let mut out = Tensor::zeros([3]);
        t.sum_rows_into(&mut out).expect("matrix");
        assert_eq!(out, s);
        let mut bad = Tensor::zeros([2]);
        assert!(t.sum_rows_into(&mut bad).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones([2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::ones([2]);
        let b = &a + 1e-6;
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&Tensor::ones([3]), 1.0));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    // ------------------------------------------------------------------
    // Copy-on-write semantics
    // ------------------------------------------------------------------

    #[test]
    fn clone_shares_storage_until_write() {
        let a = Tensor::from_fn([8], |i| i as f32);
        let b = a.clone();
        assert!(a.shares_storage(&b));
        assert!(!a.storage_is_unique());
        let mut c = a.clone();
        c.data_mut()[0] = 99.0;
        assert!(!c.shares_storage(&a), "write un-shares");
        assert_eq!(a.data()[0], 0.0, "original untouched by CoW write");
        assert_eq!(b.data()[0], 0.0);
        assert_eq!(c.data()[0], 99.0);
    }

    #[test]
    fn reshape_is_a_view_until_write() {
        let a = Tensor::from_fn([2, 3], |i| i as f32);
        let v = a.reshape([3, 2]).expect("same volume");
        assert!(v.shares_storage(&a));
        let mut w = a.reshape([6]).expect("same volume");
        w.data_mut()[0] = -1.0;
        assert!(!w.shares_storage(&a));
        assert_eq!(a.data()[0], 0.0);
    }

    #[test]
    fn into_unique_vec_respects_sharing() {
        let a = Tensor::from_fn([4], |i| i as f32);
        let b = a.clone();
        assert!(
            b.into_unique_vec().is_none(),
            "shared buffer not detachable"
        );
        assert!(
            a.storage_is_unique(),
            "dropping the clone restores uniqueness"
        );
        let v = a.into_unique_vec().expect("sole owner detaches");
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn into_vec_copies_only_when_shared() {
        let a = Tensor::from_fn([3], |i| i as f32);
        let b = a.clone();
        assert_eq!(a.into_vec(), vec![0.0, 1.0, 2.0]);
        assert_eq!(b.into_vec(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn equality_ignores_aliasing() {
        let a = Tensor::from_fn([4], |i| i as f32);
        let b = a.clone();
        let c = Tensor::from_fn([4], |i| i as f32);
        assert_eq!(a, b, "aliased tensors are equal (fast path)");
        assert_eq!(a, c, "equal contents, distinct buffers");
    }
}
