//! The dense, row-major `f32` tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the Reduce
/// reproduction: activations, weights, gradients and fault masks are all
/// `Tensor`s. Data is always contiguous; reshapes are O(1), transposes copy.
///
/// # Examples
///
/// ```
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let b = Tensor::full([2, 2], 10.0);
/// let c = (&a + &b)?;
/// assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones<S: Into<Shape>>(shape: S) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec<S: Into<Shape>>(data: Vec<f32>, shape: S) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat (row-major) index.
    pub fn from_fn<S: Into<Shape>, F: FnMut(usize) -> f32>(shape: S, f: F) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let data = (0..n).map(f).collect();
        Tensor { shape, data }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor of `n` evenly spaced values in `[start, end)`.
    pub fn arange(start: f32, end: f32, step: f32) -> Self {
        // xtask:allow(float-eq): a literal-zero step is a caller bug, checked exactly
        assert!(step != 0.0, "arange step must be nonzero");
        let n = if (end - start) / step > 0.0 {
            ((end - start) / step).ceil() as usize
        } else {
            0
        };
        let data: Vec<f32> = (0..n).map(|i| start + step * i as f32).collect();
        let len = data.len();
        Tensor {
            shape: Shape::from([len]),
            data,
        }
    }

    /// Creates a tensor with i.i.d. uniform values in `[lo, hi)`, seeded.
    pub fn rand_uniform<S: Into<Shape>>(shape: S, lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::rand_uniform_with(shape, lo, hi, &mut rng)
    }

    /// Like [`Tensor::rand_uniform`] but drawing from a caller-owned RNG.
    pub fn rand_uniform_with<S: Into<Shape>, R: Rng>(
        shape: S,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with i.i.d. normal values `N(mean, std^2)`, seeded.
    pub fn rand_normal<S: Into<Shape>>(shape: S, mean: f32, std: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::rand_normal_with(shape, mean, std, &mut rng)
    }

    /// Like [`Tensor::rand_normal`] but drawing from a caller-owned RNG.
    ///
    /// Uses the Box–Muller transform so only `rand`'s uniform source is
    /// needed.
    pub fn rand_normal_with<S: Into<Shape>, R: Rng>(
        shape: S,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice (shortcut for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn at(&self, idx: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(idx)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(idx)?;
        self.data[off] = value;
        Ok(())
    }

    /// The single value of a scalar or single-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "item",
                reason: format!("tensor has {} elements, expected 1", self.data.len()),
            });
        }
        Ok(self.data[0])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Result<Tensor> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape_in_place<S: Into<Shape>>(&mut self, shape: S) -> Result<()> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Transpose of a rank-2 tensor (copies).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Copies row `i` of a rank-2 tensor into a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-range rows.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if i >= r {
            return Err(TensorError::OutOfBounds {
                what: "row",
                index: i,
                bound: r,
            });
        }
        Ok(Tensor {
            shape: Shape::from([c]),
            data: self.data[i * c..(i + 1) * c].to_vec(),
        })
    }

    /// Borrow of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-range rows.
    pub fn row_slice(&self, i: usize) -> Result<&[f32]> {
        let (r, c) = self.shape.as_matrix()?;
        if i >= r {
            return Err(TensorError::OutOfBounds {
                what: "row",
                index: i,
                bound: r,
            });
        }
        Ok(&self.data[i * c..(i + 1) * c])
    }

    /// Copies rows `[start, end)` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or invalid ranges.
    pub fn rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if start > end || end > r {
            return Err(TensorError::OutOfBounds {
                what: "row range end",
                index: end,
                bound: r + 1,
            });
        }
        Ok(Tensor {
            shape: Shape::from([end - start, c]),
            data: self.data[start * c..end * c].to_vec(),
        })
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `rows` is empty or rows
    /// disagree in length or rank.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows.first().ok_or(TensorError::InvalidArgument {
            op: "stack_rows",
            reason: "no rows given".to_string(),
        })?;
        if first.rank() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "stack_rows",
                reason: format!("expected rank-1 rows, got rank {}", first.rank()),
            });
        }
        let c = first.len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for row in rows {
            if row.len() != c || row.rank() != 1 {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_rows",
                    lhs: first.dims().to_vec(),
                    rhs: row.dims().to_vec(),
                });
            }
            data.extend_from_slice(&row.data);
        }
        Ok(Tensor {
            shape: Shape::from([rows.len(), c]),
            data,
        })
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place `self[i] = f(self[i], other[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map_in_place<F: Fn(f32, f32) -> f32>(&mut self, other: &Tensor, f: F) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map_in_place",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// `self += alpha * other` (BLAS `axpy`), shapes must match.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.zip_map_in_place(other, |a, b| a + alpha * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element (first on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "argmax",
                reason: "empty tensor".to_string(),
            });
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors or
    /// zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (r, c) = self.shape.as_matrix()?;
        if c == 0 {
            return Err(TensorError::InvalidArgument {
                op: "argmax_rows",
                reason: "zero columns".to_string(),
            });
        }
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sum over rows of a rank-2 tensor, yielding a rank-1 tensor of length
    /// `cols` (the column sums). This is the reduction used for bias
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-matrix tensors.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(&self.data[i * c..(i + 1) * c]) {
                *o += v;
            }
        }
        Ok(Tensor {
            shape: Shape::from([c]),
            data: out,
        })
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        // xtask:allow(float-eq): sparsity counts exact-zero entries by definition
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Returns `true` if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Elementwise approximate equality within `tol` (absolute).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}[", self.shape)?;
        let n = self.data.len().min(8);
        for (i, x) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op_name:literal, $f:expr) => {
        impl $trait for &Tensor {
            type Output = Result<Tensor>;
            fn $method(self, rhs: &Tensor) -> Result<Tensor> {
                if self.shape != rhs.shape {
                    return Err(TensorError::ShapeMismatch {
                        op: $op_name,
                        lhs: self.dims().to_vec(),
                        rhs: rhs.dims().to_vec(),
                    });
                }
                self.zip_map(rhs, $f)
            }
        }
    };
}

impl_binop!(Add, add, "add", |a, b| a + b);
impl_binop!(Sub, sub, "sub", |a, b| a - b);
impl_binop!(Mul, mul, "mul", |a, b| a * b);
impl_binop!(Div, div, "div", |a, b| a / b);

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.map(|x| x + rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([2, 3]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full([2], 4.5);
        assert_eq!(f.data(), &[4.5, 4.5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], [3]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("lengths match");
        assert_eq!(t.dims(), &[3]);
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let t = Tensor::from_fn([2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.at(&[1, 0]).expect("valid"), 2.0);
    }

    #[test]
    fn arange_basic() {
        let t = Tensor::arange(0.0, 1.0, 0.25);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75]);
        assert!(Tensor::arange(1.0, 0.0, 0.5).is_empty());
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = Tensor::rand_uniform([16], -1.0, 1.0, 42);
        let b = Tensor::rand_uniform([16], -1.0, 1.0, 42);
        let c = Tensor::rand_uniform([16], -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn rand_normal_moments() {
        let t = Tensor::rand_normal([10_000], 2.0, 0.5, 7);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.03, "var {var}");
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]).expect("valid"), 1.0);
        assert_eq!(t.at(&[0, 1]).expect("valid"), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(3.0).item().expect("scalar"), 3.0);
        assert!(Tensor::zeros([2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let r = t.reshape([3, 2]).expect("same volume");
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let tt = t.transpose().expect("matrix");
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(
            tt.at(&[2, 1]).expect("valid"),
            t.at(&[1, 2]).expect("valid")
        );
        assert_eq!(tt.transpose().expect("matrix"), t);
    }

    #[test]
    fn row_and_rows() {
        let t = Tensor::from_fn([3, 2], |i| i as f32);
        assert_eq!(t.row(1).expect("in range").data(), &[2.0, 3.0]);
        assert_eq!(t.rows(1, 3).expect("in range").dims(), &[2, 2]);
        assert!(t.row(3).is_err());
        assert!(t.rows(2, 4).is_err());
    }

    #[test]
    fn stack_rows_round_trip() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], [2]).expect("ok"),
            Tensor::from_vec(vec![3.0, 4.0], [2]).expect("ok"),
        ];
        let m = Tensor::stack_rows(&rows).expect("consistent rows");
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(0).expect("in range"), rows[0]);
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).expect("ok");
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]).expect("ok");
        assert_eq!((&a + &b).expect("same shape").data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).expect("same shape").data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).expect("same shape").data(), &[3.0, 10.0]);
        assert_eq!((&b / &a).expect("same shape").data(), &[3.0, 2.5]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        assert_eq!((&a + 1.0).data(), &[2.0, 3.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_is_error() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!((&a + &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).expect("ok");
        a.axpy(0.5, &b).expect("same shape");
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], [4]).expect("ok");
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax().expect("non-empty"), 2);
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.sparsity() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 2.0], [2, 2]).expect("ok");
        assert_eq!(t.argmax_rows().expect("matrix"), vec![0, 1]);
    }

    #[test]
    fn sum_rows_gives_column_sums() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let s = t.sum_rows().expect("matrix");
        assert_eq!(s.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones([2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::ones([2]);
        let b = &a + 1e-6;
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&Tensor::ones([3]), 1.0));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
