//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// All public fallible operations in this crate return
/// `Result<_, TensorError>`. Infallible convenience wrappers that panic are
/// provided separately and document their panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or under the
    /// operation's contraction rule) did not.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand / expected shape.
        lhs: Vec<usize>,
        /// Right-hand / actual shape.
        rhs: Vec<usize>,
    },
    /// The number of data elements does not match the product of the shape
    /// dimensions.
    LengthMismatch {
        /// Expected element count (product of shape dims).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// An index or axis was out of bounds.
    OutOfBounds {
        /// What was being indexed, e.g. `"axis"` or `"row"`.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound it had to satisfy.
        bound: usize,
    },
    /// An argument was structurally invalid (empty shape where non-empty is
    /// required, zero-sized kernel, stride of zero, ...).
    InvalidArgument {
        /// Operation name.
        op: &'static str,
        /// Why the argument was rejected.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::OutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            TensorError::InvalidArgument { op, reason } => {
                write!(f, "invalid argument to {op}: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: [2, 3] vs [4, 5]");
    }

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("does not match"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = TensorError::OutOfBounds {
            what: "axis",
            index: 3,
            bound: 2,
        };
        assert!(e.to_string().contains("axis index 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
