//! Property-based tests for the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;
use reduce_tensor::{ops, Shape, Tensor};

/// Strategy: a small matrix with bounded entries.
fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, [r, c]).expect("length matches"))
    })
}

/// Strategy: a pair of same-shape matrices.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            prop::collection::vec(-10.0f32..10.0, r * c),
            prop::collection::vec(-10.0f32..10.0, r * c),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(a, [r, c]).expect("length matches"),
                    Tensor::from_vec(b, [r, c]).expect("length matches"),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes((a, b) in matrix_pair(8)) {
        let ab = (&a + &b).expect("same shape");
        let ba = (&b + &a).expect("same shape");
        prop_assert!(ab.approx_eq(&ba, 1e-5));
    }

    #[test]
    fn double_transpose_is_identity(a in matrix(8)) {
        let tt = a.transpose().expect("matrix").transpose().expect("matrix");
        prop_assert_eq!(tt, a);
    }

    #[test]
    fn matmul_identity_right(a in matrix(8)) {
        let (_, c) = a.shape().as_matrix().expect("matrix");
        let prod = ops::matmul(&a, &Tensor::eye(c)).expect("conformable");
        prop_assert!(prod.approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(6), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ, with B generated to conform.
        let (_, k) = a.shape().as_matrix().expect("matrix");
        let b = Tensor::rand_uniform([k, 5], -1.0, 1.0, seed);
        let lhs = ops::matmul(&a, &b).expect("conformable").transpose().expect("matrix");
        let rhs = ops::matmul(
            &b.transpose().expect("matrix"),
            &a.transpose().expect("matrix"),
        ).expect("conformable");
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_nt_tn_consistent(a in matrix(6), seed in 0u64..1000) {
        let (m, k) = a.shape().as_matrix().expect("matrix");
        let b = Tensor::rand_uniform([3, k], -1.0, 1.0, seed);
        let nt = ops::matmul_nt(&a, &b).expect("conformable");
        prop_assert_eq!(nt.dims(), &[m, 3]);
        let explicit = ops::matmul(&a, &b.transpose().expect("matrix")).expect("conformable");
        prop_assert!(nt.approx_eq(&explicit, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(8)) {
        let s = 3.0f32;
        let lhs = &(&a + &b).expect("same shape") * s;
        let rhs = (&(&a * s) + &(&b * s)).expect("same shape");
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(8)) {
        let p = ops::softmax_rows(&a).expect("matrix");
        let (r, c) = p.shape().as_matrix().expect("matrix");
        for i in 0..r {
            let s: f32 = p.row_slice(i).expect("in range").iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        prop_assert!(p.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        let _ = c;
    }

    #[test]
    fn reshape_preserves_sum(a in matrix(8)) {
        let n = a.len();
        let r = a.reshape([n]).expect("same volume");
        prop_assert!((r.sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn sum_rows_matches_total(a in matrix(8)) {
        let col_sums = a.sum_rows().expect("matrix");
        prop_assert!((col_sums.sum() - a.sum()).abs() < 1e-2);
    }

    #[test]
    fn shape_offsets_are_bijective(dims in prop::collection::vec(1usize..5, 1..4)) {
        let s = Shape::new(dims.clone());
        let mut seen = vec![false; s.volume()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = s.offset(&idx).expect("valid index");
            prop_assert!(!seen[off]);
            seen[off] = true;
            // Odometer increment.
            let mut d = dims.len();
            loop {
                if d == 0 { break; }
                d -= 1;
                idx[d] += 1;
                if idx[d] < dims[d] { break; }
                idx[d] = 0;
                if d == 0 {
                    prop_assert!(seen.iter().all(|&b| b));
                    return Ok(());
                }
            }
            if idx.iter().all(|&v| v == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stack_rows_inverts_row_extraction(a in matrix(6)) {
        let (r, _) = a.shape().as_matrix().expect("matrix");
        let rows: Vec<Tensor> = (0..r).map(|i| a.row(i).expect("in range")).collect();
        let restacked = Tensor::stack_rows(&rows).expect("consistent rows");
        prop_assert_eq!(restacked, a);
    }
}
