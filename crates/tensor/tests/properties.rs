//! Property-based tests for the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;
use reduce_tensor::ops::gemm::{self, GemmVariant};
use reduce_tensor::{ops, Shape, Tensor};

/// Strategy: a randomized GEMM problem size, weighted to include the
/// degenerate GEMV-like axes (`m = 1`, `n = 1`, `k = 1`) alongside
/// shapes large enough to cross tile and cache-block boundaries.
fn gemm_axis() -> impl Strategy<Value = usize> {
    prop_oneof![
        3 => 1usize..=40,
        1 => Just(1usize),
        1 => 120usize..=150,
    ]
}

fn gemm_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (gemm_axis(), gemm_axis(), gemm_axis())
}

/// Tolerance for comparing the fused (FMA) packed kernel against the
/// separate-rounding naive oracle over a length-`k` reduction of
/// entries bounded by ~10 (see `gemm` module docs).
fn fma_tol(k: usize) -> f32 {
    1e-3f32.max(k as f32 * 1e-4)
}

/// The three variants with operand tensors generated for a logical
/// `(m, k, n)` problem.
fn variant_operands(
    variant: GemmVariant,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) -> (Tensor, Tensor) {
    let (adim, bdim) = match variant {
        GemmVariant::NN => ([m, k], [k, n]),
        GemmVariant::TN => ([k, m], [k, n]),
        GemmVariant::NT => ([m, k], [n, k]),
    };
    (
        Tensor::rand_uniform(adim, -10.0, 10.0, seed),
        Tensor::rand_uniform(bdim, -10.0, 10.0, seed.wrapping_add(1)),
    )
}

/// Strategy: a small matrix with bounded entries.
fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, [r, c]).expect("length matches"))
    })
}

/// Strategy: a pair of same-shape matrices.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            prop::collection::vec(-10.0f32..10.0, r * c),
            prop::collection::vec(-10.0f32..10.0, r * c),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(a, [r, c]).expect("length matches"),
                    Tensor::from_vec(b, [r, c]).expect("length matches"),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes((a, b) in matrix_pair(8)) {
        let ab = (&a + &b).expect("same shape");
        let ba = (&b + &a).expect("same shape");
        prop_assert!(ab.approx_eq(&ba, 1e-5));
    }

    #[test]
    fn double_transpose_is_identity(a in matrix(8)) {
        let tt = a.transpose().expect("matrix").transpose().expect("matrix");
        prop_assert_eq!(tt, a);
    }

    #[test]
    fn matmul_identity_right(a in matrix(8)) {
        let (_, c) = a.shape().as_matrix().expect("matrix");
        let prod = ops::matmul(&a, &Tensor::eye(c)).expect("conformable");
        prop_assert!(prod.approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(6), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ, with B generated to conform.
        let (_, k) = a.shape().as_matrix().expect("matrix");
        let b = Tensor::rand_uniform([k, 5], -1.0, 1.0, seed);
        let lhs = ops::matmul(&a, &b).expect("conformable").transpose().expect("matrix");
        let rhs = ops::matmul(
            &b.transpose().expect("matrix"),
            &a.transpose().expect("matrix"),
        ).expect("conformable");
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_nt_tn_consistent(a in matrix(6), seed in 0u64..1000) {
        let (m, k) = a.shape().as_matrix().expect("matrix");
        let b = Tensor::rand_uniform([3, k], -1.0, 1.0, seed);
        let nt = ops::matmul_nt(&a, &b).expect("conformable");
        prop_assert_eq!(nt.dims(), &[m, 3]);
        let explicit = ops::matmul(&a, &b.transpose().expect("matrix")).expect("conformable");
        prop_assert!(nt.approx_eq(&explicit, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(8)) {
        let s = 3.0f32;
        let lhs = &(&a + &b).expect("same shape") * s;
        let rhs = (&(&a * s) + &(&b * s)).expect("same shape");
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(8)) {
        let p = ops::softmax_rows(&a).expect("matrix");
        let (r, c) = p.shape().as_matrix().expect("matrix");
        for i in 0..r {
            let s: f32 = p.row_slice(i).expect("in range").iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        prop_assert!(p.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        let _ = c;
    }

    #[test]
    fn reshape_preserves_sum(a in matrix(8)) {
        let n = a.len();
        let r = a.reshape([n]).expect("same volume");
        prop_assert!((r.sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn sum_rows_matches_total(a in matrix(8)) {
        let col_sums = a.sum_rows().expect("matrix");
        prop_assert!((col_sums.sum() - a.sum()).abs() < 1e-2);
    }

    #[test]
    fn shape_offsets_are_bijective(dims in prop::collection::vec(1usize..5, 1..4)) {
        let s = Shape::new(dims.clone());
        let mut seen = vec![false; s.volume()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = s.offset(&idx).expect("valid index");
            prop_assert!(!seen[off]);
            seen[off] = true;
            // Odometer increment.
            let mut d = dims.len();
            loop {
                if d == 0 { break; }
                d -= 1;
                idx[d] += 1;
                if idx[d] < dims[d] { break; }
                idx[d] = 0;
                if d == 0 {
                    prop_assert!(seen.iter().all(|&b| b));
                    return Ok(());
                }
            }
            if idx.iter().all(|&v| v == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stack_rows_inverts_row_extraction(a in matrix(6)) {
        let (r, _) = a.shape().as_matrix().expect("matrix");
        let rows: Vec<Tensor> = (0..r).map(|i| a.row(i).expect("in range")).collect();
        let restacked = Tensor::stack_rows(&rows).expect("consistent rows");
        prop_assert_eq!(restacked, a);
    }

    #[test]
    fn packed_kernel_agrees_with_naive_oracle(
        (m, k, n) in gemm_dims(),
        seed in 0u64..1000,
    ) {
        // The packed path is forced regardless of shape, so this also
        // covers the degenerate m/n/k = 1 cases production dispatch
        // would route to the blocked loops.
        for variant in [GemmVariant::NN, GemmVariant::TN, GemmVariant::NT] {
            let (a, b) = variant_operands(variant, m, k, n, seed);
            let mut packed = Tensor::full([m, n], f32::NAN);
            gemm::packed_into(variant, &a, &b, &mut packed).expect("conformable");
            let mut naive = Tensor::zeros([m, n]);
            gemm::reference::naive_into(variant, &a, &b, &mut naive).expect("conformable");
            prop_assert!(
                packed.approx_eq(&naive, fma_tol(k)),
                "variant {} shape {}x{}x{}", variant.name(), m, k, n
            );
        }
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_naive(
        (m, k, n) in gemm_dims(),
        seed in 0u64..1000,
    ) {
        for variant in [GemmVariant::NN, GemmVariant::TN, GemmVariant::NT] {
            let (a, b) = variant_operands(variant, m, k, n, seed);
            let mut blocked = Tensor::zeros([m, n]);
            gemm::reference::blocked_into(variant, &a, &b, &mut blocked).expect("conformable");
            let mut naive = Tensor::zeros([m, n]);
            gemm::reference::naive_into(variant, &a, &b, &mut naive).expect("conformable");
            prop_assert_eq!(blocked, naive, "variant {} shape {}x{}x{}", variant.name(), m, k, n);
        }
    }

    #[test]
    fn into_variants_match_allocating_bit_for_bit(
        (m, k, n) in gemm_dims(),
        seed in 0u64..1000,
        fill in prop_oneof![Just(0.0f32), Just(f32::NAN), Just(-7.5f32)],
    ) {
        // The `_into` kernels must fully overwrite a reused output
        // workspace: dirty contents (NaN poison, stale values from a
        // previous step) must never leak into the result.
        let results = [
            (GemmVariant::NN, {
                let (a, b) = variant_operands(GemmVariant::NN, m, k, n, seed);
                let mut out = Tensor::full([m, n], fill);
                ops::matmul_into(&a, &b, &mut out).expect("conformable");
                (out, ops::matmul(&a, &b).expect("conformable"))
            }),
            (GemmVariant::TN, {
                let (a, b) = variant_operands(GemmVariant::TN, m, k, n, seed);
                let mut out = Tensor::full([m, n], fill);
                ops::matmul_tn_into(&a, &b, &mut out).expect("conformable");
                (out, ops::matmul_tn(&a, &b).expect("conformable"))
            }),
            (GemmVariant::NT, {
                let (a, b) = variant_operands(GemmVariant::NT, m, k, n, seed);
                let mut out = Tensor::full([m, n], fill);
                ops::matmul_nt_into(&a, &b, &mut out).expect("conformable");
                (out, ops::matmul_nt(&a, &b).expect("conformable"))
            }),
        ];
        for (variant, (reused, fresh)) in results {
            prop_assert_eq!(
                reused.data(), fresh.data(),
                "variant {} shape {}x{}x{} fill {}", variant.name(), m, k, n, fill
            );
        }
    }
}
