//! # reduce-repro
//!
//! Umbrella crate of the Reduce (DATE 2023) reproduction: re-exports the
//! full workspace API and hosts the runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`).
//!
//! See the repository README for the quickstart and DESIGN.md for the
//! system inventory; each sub-crate's documentation covers its own layer:
//!
//! * [`tensor`] — dense f32 tensors and numeric kernels;
//! * [`nn`] — the NN training framework with fault-maskable weights;
//! * [`data`] — seeded synthetic datasets;
//! * [`systolic`] — the faulty systolic-array accelerator model;
//! * [`core`] — the Reduce framework itself (Steps ①–③).
//!
//! # Examples
//!
//! ```
//! use reduce_repro::core::Workbench;
//!
//! # fn main() -> Result<(), reduce_repro::core::ReduceError> {
//! let pre = Workbench::toy(1).pretrain(5)?;
//! assert!(pre.baseline_accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use reduce_core as core;
pub use reduce_data as data;
pub use reduce_nn as nn;
pub use reduce_systolic as systolic;
pub use reduce_tensor as tensor;
